"""Canonical SimConfig/FaultPlan serialization: property-based round-trip.

The dict form is the batch runner's wire + digest format, so round-trips
must be exact (``from_dict(to_dict(c)) == c``) and unknown keys must be
rejected — a silently-dropped key would change what a cache key means.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, SimulationError
from repro.faults import CoreDeath, FaultPlan, LinkSpike
from repro.sim import SimConfig

_N_CORES = 8

_rates = st.floats(min_value=0.0, max_value=0.9, allow_nan=False)

_deaths = st.lists(
    st.builds(CoreDeath,
              core=st.integers(min_value=0, max_value=_N_CORES - 1),
              cycle=st.integers(min_value=1, max_value=10_000)),
    max_size=3, unique_by=lambda d: d.core).map(tuple)

_spikes = st.lists(
    st.builds(LinkSpike,
              src=st.integers(min_value=-1, max_value=_N_CORES - 1),
              dst=st.integers(min_value=0, max_value=_N_CORES - 1),
              start=st.integers(min_value=1, max_value=1000),
              end=st.integers(min_value=1001, max_value=2000),
              extra=st.integers(min_value=0, max_value=16)),
    max_size=2).map(tuple)

_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    drop_rate=_rates, spike_rate=_rates, jitter_rate=_rates,
    ack_loss_rate=_rates,
    spike_extra=st.integers(min_value=0, max_value=16),
    jitter_cores=st.one_of(
        st.none(),
        st.lists(st.integers(min_value=0, max_value=_N_CORES - 1),
                 max_size=4, unique=True).map(tuple)),
    deaths=_deaths, spikes=_spikes,
    retry_timeout=st.integers(min_value=1, max_value=8),
    backoff_cap=st.integers(min_value=8, max_value=64),
    max_resends=st.integers(min_value=1, max_value=8),
    redispatch=st.booleans(),
    redispatch_latency=st.integers(min_value=0, max_value=32),
    start_cycle=st.integers(min_value=0, max_value=5000))

_configs = st.builds(
    SimConfig,
    n_cores=st.just(_N_CORES),
    section_create_latency=st.integers(min_value=0, max_value=8),
    noc_latency=st.integers(min_value=1, max_value=8),
    topology=st.sampled_from(["uniform", "mesh"]),
    dmh_latency=st.integers(min_value=0, max_value=8),
    fetch_width=st.integers(min_value=1, max_value=4),
    retire_width=st.integers(min_value=1, max_value=4),
    placement=st.sampled_from(["round_robin", "least_loaded",
                               "same_core", "random"]),
    placement_seed=st.integers(min_value=0, max_value=2**31),
    stack_shortcut=st.booleans(),
    line_bytes=st.sampled_from([8, 16, 64, 128]),
    event_driven=st.booleans(),
    kernel=st.sampled_from([None, "naive", "event", "vector"]),
    trace=st.booleans(),
    events=st.booleans(),
    max_cycles=st.integers(min_value=1000, max_value=2_000_000),
    metrics_window=st.sampled_from([None, 1, 64, 1000]),
    checkpoint_cycles=st.sampled_from([None, (5,), (3, 9, 100)]),
    faults=st.one_of(st.none(), _plans))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(config=_configs)
    def test_simconfig_roundtrips(self, config):
        clone = SimConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.to_dict() == config.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(plan=_plans)
    def test_faultplan_roundtrips(self, plan):
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.to_dict() == plan.to_dict()

    def test_dict_is_json_ready(self):
        import json
        config = SimConfig(faults=FaultPlan(
            seed=3, deaths=(CoreDeath(core=1, cycle=5),),
            jitter_cores=(0, 1)))
        wire = json.loads(json.dumps(config.to_dict()))
        assert SimConfig.from_dict(wire) == config

    def test_every_field_emitted(self):
        # metrics_window, optimize and checkpoint_cycles are the three
        # deliberate elisions: their defaults (None/False/None) are
        # omitted from the wire dict so pre-existing cache keys stay
        # byte-identical (see SimConfig.to_dict)
        from dataclasses import fields
        payload = SimConfig().to_dict()
        expected = ({f.name for f in fields(SimConfig)}
                    - {"metrics_window", "optimize", "checkpoint_cycles"})
        assert set(payload) == expected

    def test_metrics_window_elided_only_when_none(self):
        assert "metrics_window" not in SimConfig().to_dict()
        payload = SimConfig(metrics_window=64).to_dict()
        assert payload["metrics_window"] == 64
        clone = SimConfig.from_dict(payload)
        assert clone.metrics_window == 64
        # a set window must fork the cache key; a default one must not
        assert payload != SimConfig().to_dict()

    def test_metrics_window_validated(self):
        with pytest.raises(ValueError, match="metrics_window"):
            SimConfig(metrics_window=0)

    def test_checkpoint_cycles_elided_only_when_none(self):
        assert "checkpoint_cycles" not in SimConfig().to_dict()
        payload = SimConfig(checkpoint_cycles=(9, 3, 3)).to_dict()
        # normalized on construction: deduped, sorted, a JSON-ready list
        assert payload["checkpoint_cycles"] == [3, 9]
        clone = SimConfig.from_dict(payload)
        assert clone.checkpoint_cycles == (3, 9)

    def test_checkpoint_cycles_validated(self):
        with pytest.raises(ValueError, match="checkpoint_cycles"):
            SimConfig(checkpoint_cycles=())
        with pytest.raises(ValueError, match="checkpoint_cycles"):
            SimConfig(checkpoint_cycles=(0,))

    def test_start_cycle_elided_only_when_zero(self):
        assert "start_cycle" not in FaultPlan(drop_rate=0.1).to_dict()
        payload = FaultPlan(drop_rate=0.1, start_cycle=500).to_dict()
        assert payload["start_cycle"] == 500
        assert FaultPlan.from_dict(payload).start_cycle == 500


class TestRejection:
    def test_unknown_simconfig_key(self):
        with pytest.raises(SimulationError, match="flux_capacitor"):
            SimConfig.from_dict({"flux_capacitor": 1})

    def test_unknown_faultplan_key(self):
        with pytest.raises(ReproError, match="gremlins"):
            FaultPlan.from_dict({"gremlins": True})

    def test_unknown_nested_death_key(self):
        plan = FaultPlan(deaths=(CoreDeath(core=0, cycle=5),)).to_dict()
        plan["deaths"][0]["mood"] = "bad"
        with pytest.raises(ReproError):
            FaultPlan.from_dict(plan)

    def test_validation_reruns_on_load(self):
        payload = SimConfig().to_dict()
        payload["placement"] = "astrology"
        with pytest.raises(ValueError):
            SimConfig.from_dict(payload)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="turbo"):
            SimConfig(kernel="turbo")


class TestKernelCoherence:
    """``kernel`` and the legacy ``event_driven`` flag must serialize as a
    coherent pair: an explicit kernel wins and re-syncs the flag, a None
    kernel derives from the flag, and both survive the wire format."""

    @settings(max_examples=40, deadline=None)
    @given(kernel=st.sampled_from([None, "naive", "event", "vector"]),
           event_driven=st.booleans())
    def test_pair_is_coherent_and_roundtrips(self, kernel, event_driven):
        config = SimConfig(kernel=kernel, event_driven=event_driven)
        if kernel is None:
            assert config.kernel == ("event" if event_driven else "naive")
        else:
            assert config.kernel == kernel
            assert config.event_driven == (kernel != "naive")
        clone = SimConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.kernel == config.kernel
