"""Golden-trace regression tests.

``golden_results.json`` snapshots the complete ``SimResult`` surface
(cycles, sections, outputs, request traffic, per-core instruction counts,
final registers, a digest of final memory) for three small fixed
workloads — one each from ``workloads/{sorting,hashing,graphs}.py`` —
captured from the pre-event-scheduler seed simulator.  Both scheduler
modes must keep reproducing these numbers exactly: any drift in cycle
counts, section structure or request traffic is a semantic change to the
simulated machine and must be deliberate (regeneration recipe: DESIGN.md,
"Golden traces").
"""

import hashlib
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.fork import fork_transform
from repro.sim import CORE_STATES, STATE_CODES, SimConfig, simulate
from repro.workloads import get_workload

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_results.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: golden fields compared verbatim against the SimResult attribute
EXACT_FIELDS = ("cycles", "instructions", "sections", "outputs", "requests",
                "request_hops", "fetch_end", "retire_end", "fetch_computed",
                "per_core_instructions", "final_regs")


def memory_digest(memory):
    return hashlib.sha256(repr(sorted(memory.items())).encode()).hexdigest()


def _program_for(entry):
    inst = get_workload(entry["workload"]).instance(n=entry["n"],
                                                    seed=entry["seed"])
    return fork_transform(inst.program), inst


def _state_name(code):
    return (CORE_STATES[STATE_CODES.index(code)]
            if code is not None else "finished")


def first_trace_divergence(prog, config_a, config_b):
    """Locate the first (cycle, core) where two configurations' per-cycle
    state timelines differ, as ``(cycle, core, state_a, state_b)`` with
    human-readable state names — or None when the timelines are equal.

    This is the locator attached to golden failures under the non-naive
    kernels: "cycles drifted" alone is unactionable, "core 3 parked at
    cycle 214 where the naive kernel kept it blocked" points at the
    scheduling decision that went wrong."""
    res_a, _ = simulate(prog, replace(config_a, trace=True))
    res_b, _ = simulate(prog, replace(config_b, trace=True))
    for cycle in range(max(res_a.cycles, res_b.cycles)):
        for core in range(len(res_a.trace)):
            code_a = (res_a.trace[core][cycle]
                      if cycle < len(res_a.trace[core]) else None)
            code_b = (res_b.trace[core][cycle]
                      if cycle < len(res_b.trace[core]) else None)
            if code_a != code_b:
                return (cycle, core, _state_name(code_a),
                        _state_name(code_b))
    return None


def _divergence_note(prog, config):
    where = first_trace_divergence(prog, replace(config, kernel="naive"),
                                   config)
    if where is None:
        return ("no per-cycle divergence from the naive kernel; "
                "the drift is in result accounting")
    cycle, core, naive_state, kernel_state = where
    return ("first divergence from the naive kernel at cycle %d core %d: "
            "naive=%s %s=%s"
            % (cycle, core, naive_state, config.kernel, kernel_state))


@pytest.mark.parametrize("key", sorted(GOLDEN))
@pytest.mark.parametrize("kernel", ["naive", "event", "vector"])
def test_golden_workload(key, kernel):
    entry = GOLDEN[key]
    prog, inst = _program_for(entry)
    config = SimConfig(n_cores=entry["n_cores"],
                       stack_shortcut=entry["stack_shortcut"],
                       kernel=kernel)
    result, _ = simulate(prog, config)
    assert result.signed_outputs == inst.expected_output
    for field in EXACT_FIELDS:
        if getattr(result, field) != entry[field]:
            note = ("" if kernel == "naive"
                    else "; " + _divergence_note(prog, config))
            pytest.fail("%s drifted on %s (%s kernel): got %r, golden %r%s"
                        % (field, key, kernel, getattr(result, field),
                           entry[field], note))
    assert memory_digest(result.final_memory) == entry["final_memory_sha256"]


class TestDivergenceLocator:
    """The locator itself must work when a real divergence exists — a
    golden failure that cannot name its first divergent cycle/core is a
    regression in the harness, not just in the kernel."""

    def test_names_first_divergent_cycle_and_core(self):
        entry = GOLDEN[sorted(GOLDEN)[0]]
        prog, _ = _program_for(entry)
        base = SimConfig(n_cores=entry["n_cores"],
                         stack_shortcut=entry["stack_shortcut"],
                         kernel="vector")
        # a slower NoC legitimately changes the timeline: the locator
        # must pinpoint where, with readable state names
        slower = replace(base, noc_latency=base.noc_latency + 2)
        where = first_trace_divergence(prog, base, slower)
        assert where is not None
        cycle, core, state_a, state_b = where
        assert cycle >= 0 and 0 <= core < entry["n_cores"]
        assert {state_a, state_b} <= set(CORE_STATES) | {"finished"}
        assert state_a != state_b

    def test_silent_on_identical_kernels(self):
        entry = GOLDEN[sorted(GOLDEN)[0]]
        prog, _ = _program_for(entry)
        base = SimConfig(n_cores=entry["n_cores"],
                         stack_shortcut=entry["stack_shortcut"],
                         kernel="naive")
        assert first_trace_divergence(
            prog, base, replace(base, kernel="vector")) is None


def test_golden_file_covers_three_workload_families():
    families = {entry["workload"] for entry in GOLDEN.values()}
    assert families == {"quicksort", "dictionary", "bfs"}
