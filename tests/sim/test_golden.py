"""Golden-trace regression tests.

``golden_results.json`` snapshots the complete ``SimResult`` surface
(cycles, sections, outputs, request traffic, per-core instruction counts,
final registers, a digest of final memory) for three small fixed
workloads — one each from ``workloads/{sorting,hashing,graphs}.py`` —
captured from the pre-event-scheduler seed simulator.  Both scheduler
modes must keep reproducing these numbers exactly: any drift in cycle
counts, section structure or request traffic is a semantic change to the
simulated machine and must be deliberate (regeneration recipe: DESIGN.md,
"Golden traces").
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.fork import fork_transform
from repro.sim import SimConfig, simulate
from repro.workloads import get_workload

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_results.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: golden fields compared verbatim against the SimResult attribute
EXACT_FIELDS = ("cycles", "instructions", "sections", "outputs", "requests",
                "request_hops", "fetch_end", "retire_end", "fetch_computed",
                "per_core_instructions", "final_regs")


def memory_digest(memory):
    return hashlib.sha256(repr(sorted(memory.items())).encode()).hexdigest()


def _program_for(entry):
    inst = get_workload(entry["workload"]).instance(n=entry["n"],
                                                    seed=entry["seed"])
    return fork_transform(inst.program), inst


@pytest.mark.parametrize("key", sorted(GOLDEN))
@pytest.mark.parametrize("event_driven", [False, True],
                         ids=["naive", "event"])
def test_golden_workload(key, event_driven):
    entry = GOLDEN[key]
    prog, inst = _program_for(entry)
    config = SimConfig(n_cores=entry["n_cores"],
                       stack_shortcut=entry["stack_shortcut"],
                       event_driven=event_driven)
    result, _ = simulate(prog, config)
    assert result.signed_outputs == inst.expected_output
    for field in EXACT_FIELDS:
        assert getattr(result, field) == entry[field], (
            "%s drifted on %s (%s scheduler)"
            % (field, key, "event" if event_driven else "naive"))
    assert memory_digest(result.final_memory) == entry["final_memory_sha256"]


def test_golden_file_covers_three_workload_families():
    families = {entry["workload"] for entry in GOLDEN.values()}
    assert families == {"quicksort", "dictionary", "bfs"}
