"""NoC topology models and their effect on simulated runs."""

import pytest

from repro.errors import ReproError, SimulationError
from repro.machine import run_forked
from repro.paper import paper_array, sum_forked_program
from repro.sim import MeshNoc, SimConfig, UniformNoc, make_noc, simulate


class TestUniform:
    def test_same_core_free(self):
        noc = UniformNoc(8, 3)
        assert noc.latency(2, 2) == 0

    def test_flat_latency(self):
        noc = UniformNoc(8, 3)
        assert noc.latency(0, 7) == noc.latency(3, 4) == 3

    def test_dmh_port(self):
        assert UniformNoc(8, 3).dmh_latency_from(5) == 3


class TestMesh:
    def test_square_layout(self):
        noc = MeshNoc(16, 1)
        assert noc.width == 4
        assert noc.coords(0) == (0, 0)
        assert noc.coords(5) == (1, 1)
        assert noc.coords(15) == (3, 3)

    def test_manhattan_distance(self):
        noc = MeshNoc(16, 1)
        assert noc.latency(0, 15) == 6          # (0,0) -> (3,3)
        assert noc.latency(0, 1) == 1
        assert noc.latency(5, 5) == 0

    def test_hop_latency_scales(self):
        assert MeshNoc(16, 2).latency(0, 15) == 12

    def test_dmh_at_corner(self):
        noc = MeshNoc(16, 1)
        assert noc.dmh_latency_from(15) == 6
        assert noc.dmh_latency_from(0) == 1     # at least one port hop

    def test_non_square_counts(self):
        noc = MeshNoc(5, 1)
        assert noc.width == 3
        assert noc.coords(4) == (1, 1)

    def test_factory(self):
        assert isinstance(make_noc("uniform", 4, 1), UniformNoc)
        assert isinstance(make_noc("mesh", 4, 1), MeshNoc)

    def test_factory_rejects_unknown_topology(self):
        with pytest.raises(SimulationError, match="torus"):
            make_noc("torus", 4, 1)
        # catchable at the CLI's friendly-error boundary
        with pytest.raises(ReproError, match="uniform"):
            make_noc("torus", 4, 1)


class TestEdgeCases:
    def test_single_core_uniform(self):
        noc = UniformNoc(1, 3)
        assert noc.latency(0, 0) == 0
        assert noc.dmh_latency_from(0) == 3

    def test_single_core_mesh(self):
        noc = MeshNoc(1, 3)
        assert noc.width == 1
        assert noc.coords(0) == (0, 0)
        assert noc.latency(0, 0) == 0
        assert noc.dmh_latency_from(0) == 3     # at least one port hop

    def test_zero_hop_latency(self):
        assert UniformNoc(8, 0).latency(0, 7) == 0
        assert MeshNoc(16, 0).latency(0, 15) == 0
        assert MeshNoc(16, 0).dmh_latency_from(15) == 0

    def test_simulation_with_free_noc(self):
        # noc_latency=0 must still complete and agree with the oracle
        prog = sum_forked_program(paper_array(12))
        oracle, _ = run_forked(prog)
        for topology in ("uniform", "mesh"):
            result, _ = simulate(prog, SimConfig(
                n_cores=4, noc_latency=0, topology=topology,
                stack_shortcut=True))
            assert result.outputs == oracle.output


class TestMeshSimulation:
    def test_mesh_correctness(self):
        prog = sum_forked_program(paper_array(20))
        oracle, _ = run_forked(prog)
        result, proc = simulate(prog, SimConfig(n_cores=16, topology="mesh",
                                                stack_shortcut=True))
        assert result.outputs == oracle.output
        assert proc.noc.describe().startswith("mesh")

    def test_mesh_never_faster_than_uniform(self):
        prog = sum_forked_program(paper_array(20))
        uniform, _ = simulate(prog, SimConfig(n_cores=16,
                                              stack_shortcut=True))
        mesh, _ = simulate(prog, SimConfig(n_cores=16, topology="mesh",
                                           stack_shortcut=True))
        assert mesh.retire_end >= uniform.retire_end

    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(topology="hypercube")
