"""Simulator-internal behaviours: progressive folding, determinism,
mixed call/fork programs, line-grained DMH replies."""

import pytest

from repro.fork import fork_transform
from repro.isa import WORD, assemble
from repro.machine import run_forked
from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program
from repro.sim import Processor, SimConfig, simulate


class TestProgressiveFold:
    def test_oldest_sections_fold_during_the_run(self):
        prog = sum_forked_program(paper_array(40))
        _, proc = simulate(prog, SimConfig(n_cores=8))
        # everything eventually folds
        assert proc.folded_upto == len(proc.order)

    def test_arch_regs_match_final_state(self):
        prog = sum_forked_program(paper_array(12))
        result, proc = simulate(prog, SimConfig(n_cores=4))
        regs, _ = proc.final_state()
        assert proc.arch_regs == regs

    def test_dmh_accumulates_stores(self):
        prog = assemble("""
        main:
            movq $9, %rax
            movq %rax, cell
            fork f
            movq cell, %rbx
            out %rbx
            endfork
        f:
            endfork
        .data
        cell: .quad 0
        """)
        result, proc = simulate(prog, SimConfig(n_cores=2))
        assert result.outputs == [9]
        assert proc.dmh[prog.symbol_addr("cell")] == 9


class TestDeterminism:
    def test_same_config_same_timing(self):
        prog = sum_forked_program(paper_array(20))
        a, _ = simulate(prog, SimConfig(n_cores=4))
        b, _ = simulate(prog, SimConfig(n_cores=4))
        assert a.cycles == b.cycles
        assert a.fetch_end == b.fetch_end
        assert a.outputs == b.outputs

    def test_random_placement_deterministic_by_seed(self):
        prog = sum_forked_program(paper_array(20))
        a, _ = simulate(prog, SimConfig(n_cores=4, placement="random",
                                        placement_seed=3))
        b, _ = simulate(prog, SimConfig(n_cores=4, placement="random",
                                        placement_seed=3))
        c, _ = simulate(prog, SimConfig(n_cores=4, placement="random",
                                        placement_seed=4))
        assert a.cycles == b.cycles
        assert a.outputs == c.outputs      # correctness seed-independent


class TestMixedCallFork:
    def test_partially_transformed_program(self):
        src = """
        long helper(long x) { return x * 3; }
        long spine(long n) {
            if (n == 0) return 0;
            return helper(n) + spine(n - 1);
        }
        long main() { out(spine(6)); return 0; }
        """
        prog = compile_source(src)
        # fork only the spine; helper stays a plain call inside sections
        mixed = fork_transform(prog, fork_functions=["spine"])
        oracle, _ = run_forked(mixed)
        result, _ = simulate(mixed, SimConfig(n_cores=4))
        assert result.outputs == oracle.output == [63]

    def test_call_inside_forked_section(self):
        prog = assemble("""
        main:
            fork f
            out %rax
            endfork
        f:
            movq $4, %rdi
            call double
            endfork
        double:
            movq %rdi, %rax
            addq %rax, %rax
            ret
        """)
        oracle, _ = run_forked(prog)
        result, _ = simulate(prog, SimConfig(n_cores=2))
        assert result.outputs == oracle.output == [8]


class TestLineReplies:
    def _array_reader(self):
        return assemble("""
        main:
            movq $tab, %rdi
            fork f
            movq 16(%rdi), %rbx   # t[2]: should hit a cached line nearby
            out %rbx
            endfork
        f:
            movq (%rdi), %rax     # t[0]: walks to the DMH, fetches the line
            out %rax
            endfork
        .data
        tab: .quad 10, 20, 30, 40, 50, 60, 70, 80
        """)

    def test_values_correct_any_line_size(self):
        for line_bytes in (8, 64, 128):
            result, _ = simulate(self._array_reader(),
                                 SimConfig(n_cores=2,
                                           line_bytes=line_bytes))
            assert result.outputs == [10, 30]

    def test_line_cached_at_requester(self):
        _, proc = simulate(self._array_reader(), SimConfig(n_cores=2))
        base = proc.program.symbol_addr("tab")
        cacher = proc.order[0]        # section that loaded t[0]
        cached = [base + i * WORD in cacher.maat for i in range(8)]
        assert all(cached)

    def test_word_grain_disables_neighbour_caching(self):
        _, proc = simulate(self._array_reader(),
                           SimConfig(n_cores=2, line_bytes=8))
        base = proc.program.symbol_addr("tab")
        cacher = proc.order[0]
        assert base in cacher.maat
        assert base + WORD not in cacher.maat

    def test_dirty_line_not_cached(self):
        # The first section stores t[1]; the resume section's request for
        # t[0] walks past that dirty line, so the DMH must answer with the
        # single word only (caching t[2] from the loader image would be
        # unsound in general).
        prog = assemble("""
        main:
            movq $tab, %rdi
            movq $99, %rax
            movq %rax, 8(%rdi)
            fork f
            movq (%rdi), %rbx     # resume section: request walks past main
            out %rbx
            endfork
        f:
            movq $40, %rcx        # keep section 1 alive so the request
        spin:                     # must visit it (not the folded DMH)
            dec %rcx
            jne spin
            endfork
        .data
        tab: .quad 1, 2, 3, 4
        """)
        result, proc = simulate(prog, SimConfig(n_cores=3))
        assert result.outputs == [1]
        base = proc.program.symbol_addr("tab")
        for sec in proc.order:
            cell = sec.maat.get(base + 2 * WORD)
            assert cell is None or not cell.is_import


class TestStatsAndDisplay:
    def test_describe(self):
        result, _ = simulate(sum_forked_program(paper_array(5)),
                             SimConfig(n_cores=5))
        text = result.describe()
        assert "sections" in text and "IPC" in text

    def test_per_core_instruction_counts(self):
        result, proc = simulate(sum_forked_program(paper_array(5)),
                                SimConfig(n_cores=5))
        assert sum(result.per_core_instructions) == result.instructions

    def test_section_describe(self):
        _, proc = simulate(sum_forked_program(paper_array(5)),
                           SimConfig(n_cores=5))
        text = proc.order[0].describe()
        assert "section 1" in text and "done" in text

    def test_cycle_budget_guard(self):
        from repro.errors import SimulationError
        prog = assemble("main: jmp main")
        with pytest.raises(SimulationError):
            simulate(prog, SimConfig(n_cores=1, max_cycles=500))
