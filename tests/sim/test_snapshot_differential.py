"""Resume-at-k differential: snapshot resume is bit-identical to cold.

The tentpole proof of the snapshot subsystem, mirroring the three-way
kernel harness: every Table 1 workload × every kernel × fault-free and
chaos, checkpointed mid-run (for chaos: between the two scheduled core
deaths, so the fault engine's cursor is itself mid-state), resumed, and
compared on **every** result field — events, metrics and fault counters
included.  Plus the warm-fork path used by the chaos grid: attaching a
``start_cycle``-gated fault plan to a fault-free snapshot must be
bit-identical to the cold run with the same gated plan attached from
cycle 0.
"""

import functools

import pytest

from repro.faults import CoreDeath, FaultPlan
from repro.sim import SimConfig, simulate
from repro.snapshot import Snapshot, SnapshotError, resume

from .test_differential_vector import (
    ALL_SHORTS, COMPARED_FIELDS, METRICS_WINDOW, N_CORES, _chaos_plan,
    _program)

KERNELS = ("naive", "event", "vector")


def _config(short, kernel, chaos, **extra):
    return SimConfig(
        n_cores=N_CORES, kernel=kernel, events=True,
        metrics_window=METRICS_WINDOW,
        faults=_chaos_plan(short) if chaos else None, **extra)


@functools.lru_cache(maxsize=None)
def _fault_free_cycles(short):
    result, _ = simulate(_program(short), SimConfig(n_cores=N_CORES))
    return result.cycles


@functools.lru_cache(maxsize=None)
def _cold_with_checkpoint(short, kernel, chaos):
    """One checkpointed cold run; returns ``(result, snapshot)``.

    The label sits at a third of the fault-free length — for chaos runs
    that is between the two deaths (cycles//4 and cycles//2), so the
    restored fault engine carries one applied death and live retry
    state."""
    label = max(2, _fault_free_cycles(short) // 3)
    result, proc = simulate(
        _program(short),
        _config(short, kernel, chaos, checkpoint_cycles=(label,)))
    (snap,) = proc.checkpoints
    return result, snap


class TestResumeDifferential:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("short", ALL_SHORTS)
    def test_fault_free_resume_identical(self, short, kernel):
        cold, snap = _cold_with_checkpoint(short, kernel, chaos=False)
        warm, _ = resume(Snapshot.from_bytes(snap.to_bytes()))
        for name in COMPARED_FIELDS:
            assert getattr(warm, name) == getattr(cold, name), (
                "field %r differs after resume (%s, %s, fault-free)"
                % (name, short, kernel))

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("short", ALL_SHORTS)
    def test_chaos_resume_identical(self, short, kernel):
        cold, snap = _cold_with_checkpoint(short, kernel, chaos=True)
        warm, _ = resume(Snapshot.from_bytes(snap.to_bytes()))
        for name in COMPARED_FIELDS:
            assert getattr(warm, name) == getattr(cold, name), (
                "field %r differs after resume (%s, %s, chaos)"
                % (name, short, kernel))


class TestWarmFork:
    """The chaos grid's trick: one fault-free snapshot, many fault
    plans — sound because every plan is gated past the snapshot."""

    SHORT = "quicksort"

    def _gated_plan(self, start):
        base = _fault_free_cycles(self.SHORT)
        return FaultPlan(
            seed=77, drop_rate=0.1, ack_loss_rate=0.05,
            start_cycle=start + 1,
            deaths=(CoreDeath(core=N_CORES - 1,
                              cycle=max(start + 2, (start + base) // 2)),))

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_forked_cell_equals_cold_gated_run(self, kernel):
        start = max(2, _fault_free_cycles(self.SHORT) * 3 // 5)
        plan = self._gated_plan(start)
        _, proc = simulate(_program(self.SHORT),
                           SimConfig(n_cores=N_CORES, kernel=kernel,
                                     events=True,
                                     metrics_window=METRICS_WINDOW,
                                     checkpoint_cycles=(start,)))
        (snap,) = proc.checkpoints
        warm, _ = resume(snap, faults=plan)
        cold, _ = simulate(_program(self.SHORT),
                           SimConfig(n_cores=N_CORES, kernel=kernel,
                                     events=True,
                                     metrics_window=METRICS_WINDOW,
                                     faults=FaultPlan.from_dict(
                                         plan.to_dict())))
        for name in COMPARED_FIELDS:
            assert getattr(warm, name) == getattr(cold, name), (
                "field %r differs between warm fork and cold gated run "
                "(%s)" % (name, kernel))

    def test_ungated_plan_rejected(self):
        _, snap = _cold_with_checkpoint(self.SHORT, "event", chaos=False)
        with pytest.raises(SnapshotError, match="takes effect at cycle"):
            resume(snap, faults=FaultPlan(seed=1, drop_rate=0.5))

    def test_refaulting_a_faulted_snapshot_rejected(self):
        _, snap = _cold_with_checkpoint(self.SHORT, "event", chaos=True)
        other = FaultPlan(seed=9, drop_rate=0.2,
                          start_cycle=snap.cycle + 1)
        with pytest.raises(SnapshotError, match="cannot be re-faulted"):
            resume(snap, faults=other)

    def test_same_plan_keeps_the_engine_cursor(self):
        cold, snap = _cold_with_checkpoint(self.SHORT, "event", chaos=True)
        warm, _ = resume(snap, faults=_chaos_plan(self.SHORT))
        assert warm.fault_stats == cold.fault_stats
