"""Unit tests for SimConfig validation and the evaluate helper."""

import pytest

from repro.errors import SimulationError
from repro.isa import Imm, Instruction, Mem, Reg
from repro.isa.operands import LabelRef
from repro.isa.registers import FLAGS, pack_flags
from repro.sim import SimConfig, figure10_config
from repro.sim.evaluate import effective_address, evaluate


class TestSimConfig:
    def test_defaults_valid(self):
        config = SimConfig()
        assert config.n_cores >= 1
        assert config.section_create_latency == 2   # the paper's constant

    def test_figure10_config(self):
        config = figure10_config()
        assert config.n_cores == 5
        assert config.fetch_width == 1

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(n_cores=0)

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(placement="astrology")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(retire_width=0)

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(line_bytes=48)
        with pytest.raises(ValueError):
            SimConfig(line_bytes=4)


def values(**kwargs):
    table = {"rflags": 0}
    table.update(kwargs)
    return table.__getitem__


class TestEvaluate:
    def test_alu(self):
        instr = Instruction("add", (Reg("rbx"), Reg("rax")))
        result = evaluate(instr, values(rax=5, rbx=2))
        assert result.reg_writes["rax"] == 7
        assert FLAGS in result.reg_writes

    def test_mov_imm(self):
        instr = Instruction("mov", (Imm(9), Reg("rcx")))
        assert evaluate(instr, values()).reg_writes == {"rcx": 9}

    def test_store_value(self):
        instr = Instruction("mov", (Reg("rax"), Mem(base="rsp")))
        result = evaluate(instr, values(rax=11, rsp=0))
        assert result.mem_value == 11
        assert not result.reg_writes

    def test_load(self):
        instr = Instruction("mov", (Mem(base="rdi"), Reg("rax")))
        result = evaluate(instr, values(rdi=0), loaded=77)
        assert result.reg_writes == {"rax": 77}

    def test_load_without_value_rejected(self):
        instr = Instruction("mov", (Mem(base="rdi"), Reg("rax")))
        with pytest.raises(SimulationError):
            evaluate(instr, values(rdi=0))

    def test_rmw_memory(self):
        instr = Instruction("add", (Reg("rax"), Mem(base="rsp")))
        result = evaluate(instr, values(rax=3, rsp=0), loaded=10)
        assert result.mem_value == 13

    def test_jcc(self):
        instr = Instruction("jne", (LabelRef("x", target=7),))
        instr.addr = 2
        taken = evaluate(instr, values(rflags=0))
        assert taken.taken is True and taken.next_ip == 7
        not_taken = evaluate(
            instr, values(rflags=pack_flags(True, False, False, False)))
        assert not_taken.taken is False and not_taken.next_ip is None

    def test_push_call_ret_pop(self):
        push = Instruction("push", (Reg("rbx"),))
        assert evaluate(push, values(rbx=4, rsp=100)).mem_value == 4
        call = Instruction("call", (LabelRef("f", target=9),))
        call.addr = 3
        result = evaluate(call, values(rsp=100))
        assert result.mem_value == 4 and result.next_ip == 9
        pop = Instruction("pop", (Reg("rbx"),))
        assert evaluate(pop, values(rsp=0), loaded=123).reg_writes == {
            "rbx": 123}
        ret = Instruction("ret")
        assert evaluate(ret, values(rsp=0), loaded=5).next_ip == 5

    def test_out(self):
        instr = Instruction("out", (Reg("rax"),))
        assert evaluate(instr, values(rax=55)).out_value == 55

    def test_lea(self):
        instr = Instruction("lea",
                            (Mem(disp=8, base="rdi", index="rsi", scale=8),
                             Reg("rax")))
        result = evaluate(instr, values(rdi=100, rsi=2))
        assert result.reg_writes == {"rax": 124}

    def test_effective_address(self):
        mem = Mem(disp=-8, base="rbp")
        assert effective_address(mem, values(rbp=200)) == 192

    def test_shift_by_register(self):
        instr = Instruction("shl", (Reg("rcx"), Reg("rax")))
        result = evaluate(instr, values(rax=3, rcx=4))
        assert result.reg_writes["rax"] == 48

    def test_idiv(self):
        instr = Instruction("idiv", (Reg("rcx"),))
        result = evaluate(instr, values(rax=17, rdx=0, rcx=5))
        assert result.reg_writes["rax"] == 3
        assert result.reg_writes["rdx"] == 2
