"""Three-way differential harness: naive vs event vs vector kernels.

The vectorized struct-of-arrays kernel replaces the per-core Python
bookkeeping with chip-wide numpy planes and a lazy request scheduler,
but it must remain a pure wall-clock optimization: every Table 1
workload is driven through all three kernels, fault-free and under a
mixed chaos plan (drops, spikes, jitter, lost acks, two mid-run
fail-stops), and the runs must agree bit-for-bit on every architectural
and micro-architectural outcome — cycle counts, outputs, final state,
request statistics, occupancy histograms, the structured event stream,
and the fault counters.  A scheduling bug in the vector kernel (a stale
heap entry, a missed cell wake-up, a request stepped twice) shows up
here as a field mismatch naming the kernel and the workload.
"""

import functools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults import CoreDeath, FaultPlan
from repro.fork import fork_transform
from repro.minic import compile_source
from repro.sim import SimConfig, simulate
from repro.workloads import WORKLOADS, get_workload

ALL_SHORTS = [w.short for w in WORKLOADS]

#: every SimResult field with cross-kernel meaning must match bit-for-bit
COMPARED_FIELDS = (
    "cycles", "instructions", "sections", "outputs", "final_regs",
    "final_memory", "fetch_end", "retire_end", "fetch_computed",
    "requests", "request_hops", "per_core_instructions",
    "request_latencies", "core_occupancy", "section_occupancy",
    "noc_stats", "trace", "events", "stall_causes", "fault_stats",
    "metrics",
)

N_CORES = 8

#: the mixed chaos plan (mirrors tests/faults/test_differential.py):
#: drops with a tight retry ladder, random spikes, slow-core jitter,
#: lost acks — deaths are added per workload from the fault-free length
CHAOS = dict(seed=2015, drop_rate=0.08, spike_rate=0.05, jitter_rate=0.03,
             ack_loss_rate=0.08, retry_timeout=2, backoff_cap=16)


@functools.lru_cache(maxsize=None)
def _program(short):
    inst = get_workload(short).instance(scale=0, seed=1)
    return fork_transform(inst.program)


#: window small enough that every workload spans many windows, odd so
#: window boundaries don't align with round timing artifacts
METRICS_WINDOW = 37


@functools.lru_cache(maxsize=None)
def _fault_free(short, kernel):
    result, _ = simulate(_program(short), SimConfig(
        n_cores=N_CORES, kernel=kernel, events=True, trace=True,
        metrics_window=METRICS_WINDOW))
    return result


@functools.lru_cache(maxsize=None)
def _chaos_plan(short):
    base = _fault_free(short, "naive")
    deaths = (CoreDeath(core=N_CORES - 1, cycle=max(1, base.cycles // 4)),
              CoreDeath(core=N_CORES - 2, cycle=max(2, base.cycles // 2)))
    return FaultPlan(deaths=deaths, **CHAOS)


@functools.lru_cache(maxsize=None)
def _chaotic(short, kernel):
    result, _ = simulate(_program(short), SimConfig(
        n_cores=N_CORES, kernel=kernel, events=True,
        metrics_window=METRICS_WINDOW, faults=_chaos_plan(short)))
    return result


def _assert_fields_equal(res, ref, kernel, short):
    for name in COMPARED_FIELDS:
        assert getattr(res, name) == getattr(ref, name), (
            "field %r differs between the %s and naive kernels on %s"
            % (name, kernel, short))


class TestFaultFreeThreeWay:
    @pytest.mark.parametrize("kernel", ["event", "vector"])
    @pytest.mark.parametrize("short", ALL_SHORTS)
    def test_kernels_identical(self, short, kernel):
        ref = _fault_free(short, "naive")
        res = _fault_free(short, kernel)
        assert res.scheduler == kernel
        _assert_fields_equal(res, ref, kernel, short)

    @pytest.mark.parametrize("short", ALL_SHORTS)
    def test_reference_is_the_workload_answer(self, short):
        inst = get_workload(short).instance(scale=0, seed=1)
        assert _fault_free(short, "naive").signed_outputs == \
            inst.expected_output


class TestChaosThreeWay:
    @pytest.mark.parametrize("kernel", ["event", "vector"])
    @pytest.mark.parametrize("short", ALL_SHORTS)
    def test_kernels_identical_under_faults(self, short, kernel):
        ref = _chaotic(short, "naive")
        res = _chaotic(short, kernel)
        _assert_fields_equal(res, ref, kernel, short)

    @pytest.mark.parametrize("short", ALL_SHORTS)
    def test_chaos_perturbs_timing_never_values(self, short):
        base = _fault_free(short, "naive")
        faulted = _chaotic(short, "vector")
        assert faulted.outputs == base.outputs
        assert faulted.final_memory == base.final_memory
        assert faulted.cycles >= base.cycles
        assert faulted.fault_stats["deaths"] == 2


# -- randomized programs × randomized configs ---------------------------------

_values = st.lists(st.integers(min_value=-40, max_value=40),
                   min_size=4, max_size=8)


def _reduce_program(values, op, fanout):
    body = {"+": "a + b", "^": "a ^ b", "min": "a < b ? a : b"}[op]
    return """
    long A[%d] = {%s};
    long combine(long a, long b) { return %s; }
    long red(long* t, long k) {
        if (k == 1) return t[0];
        long cut = k / %d == 0 ? 1 : k / %d;
        return combine(red(t, cut), red(t + cut, k - cut));
    }
    long main() { out(red(A, %d)); return 0; }
    """ % (len(values), ", ".join(str(v) for v in values), body,
           fanout, fanout, len(values))


class TestRandomizedCrossKernel:
    """Random small programs under random configuration draws: every
    kernel must agree after the config has been through its canonical
    wire format (the batch runner always ships configs as dicts, so the
    agreement must hold for the deserialized config, not just the
    directly-constructed one)."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=_values, op=st.sampled_from(["+", "^", "min"]),
           fanout=st.integers(min_value=2, max_value=3),
           n_cores=st.sampled_from([1, 4, 9]),
           topology=st.sampled_from(["uniform", "mesh"]),
           fetch_width=st.integers(min_value=1, max_value=3),
           shortcut=st.booleans(),
           metrics_window=st.sampled_from([None, 1, 17, 100]))
    def test_random_programs_agree(self, values, op, fanout, n_cores,
                                   topology, fetch_width, shortcut,
                                   metrics_window):
        prog = compile_source(_reduce_program(values, op, fanout),
                              fork_mode=True)
        knobs = dict(n_cores=n_cores, topology=topology,
                     fetch_width=fetch_width, stack_shortcut=shortcut,
                     events=True, metrics_window=metrics_window)
        results = {}
        for kernel in ("naive", "event", "vector"):
            config = SimConfig.from_dict(
                SimConfig(kernel=kernel, **knobs).to_dict())
            assert config.kernel == kernel
            results[kernel], _ = simulate(prog, config)
        for kernel in ("event", "vector"):
            _assert_fields_equal(results[kernel], results["naive"],
                                 kernel, "random program")
