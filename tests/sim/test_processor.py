"""Integration tests of the distributed simulator against the functional
machines: same outputs, same final registers, same final memory."""

import pytest

from repro.isa import assemble
from repro.machine import ForkedMachine, run_forked, run_sequential
from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program
from repro.sim import Processor, SimConfig, simulate


def check_against_oracle(prog, config=None, initial_regs=None):
    """Run prog on both engines and compare every architectural outcome."""
    machine = ForkedMachine(prog, initial_regs=initial_regs)
    oracle = machine.run()
    result, proc = simulate(prog, config or SimConfig(n_cores=4),
                            initial_regs=initial_regs)
    assert result.outputs == oracle.output
    assert result.instructions == oracle.steps
    for reg, value in oracle.regs.items():
        assert result.final_regs[reg] == value, "register %s" % reg
    oracle_mem = oracle.memory.nonzero_words()
    sim_mem = {a: v for a, v in result.final_memory.items() if v}
    assert sim_mem == oracle_mem
    assert result.sections == len(machine.section_table())
    return result, proc


class TestBasicPrograms:
    def test_straight_line(self):
        prog = assemble("""
        main:
            movq $6, %rax
            addq $7, %rax
            out %rax
            hlt
        """)
        result, _ = simulate(prog, SimConfig(n_cores=1))
        assert result.outputs == [13]

    def test_single_section_loop(self):
        prog = assemble("""
        main:
            movq $0, %rax
            movq $10, %rcx
        loop:
            addq %rcx, %rax
            dec %rcx
            jne loop
            out %rax
            hlt
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [55]

    def test_memory_round_trip(self):
        prog = assemble("""
        main:
            movq $42, %rax
            movq %rax, buf
            movq buf, %rbx
            out %rbx
            hlt
        .data
        buf: .quad 0
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [42]

    def test_push_pop(self):
        prog = assemble("""
        main:
            movq $9, %rax
            pushq %rax
            movq $0, %rax
            popq %rbx
            out %rbx
            hlt
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [9]

    def test_call_ret_within_section(self):
        prog = assemble("""
        main:
            movq $4, %rdi
            call double
            out %rax
            hlt
        double:
            movq %rdi, %rax
            addq %rax, %rax
            ret
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [8]

    def test_ret_to_sentinel_halts(self):
        prog = assemble("main: movq $5, %rax\nret")
        result, _ = simulate(prog, SimConfig(n_cores=1))
        assert result.return_value == 5

    def test_division_pipeline(self):
        prog = assemble("""
        main:
            movq $17, %rax
            cqo
            movq $5, %rcx
            idivq %rcx
            out %rax
            out %rdx
            hlt
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [3, 2]


class TestForkedPrograms:
    def test_minimal_fork(self):
        prog = assemble("""
        main:
            movq $1, %rbx
            fork f
            out %rbx
            endfork
        f:
            movq $99, %rbx
            endfork
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [1]          # rbx copied at fork

    def test_rax_synchronizes_sections(self):
        prog = assemble("""
        main:
            fork f
            out %rax
            endfork
        f:
            movq $77, %rax
            endfork
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [77]         # import from the callee

    def test_memory_renaming_across_sections(self):
        prog = assemble("""
        main:
            subq $8, %rsp
            fork f
            movq (%rsp), %rbx
            out %rbx
            endfork
        f:
            movq $13, %rax
            movq %rax, (%rsp)
            endfork
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [13]

    def test_store_before_fork_read_after(self):
        prog = assemble("""
        main:
            subq $8, %rsp
            movq $55, %rax
            movq %rax, (%rsp)
            fork f
            movq (%rsp), %rbx
            out %rbx
            endfork
        f:
            endfork
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [55]

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 20])
    def test_paper_sum(self, n):
        values = [(i * 31 + 7) % 50 for i in range(n)]
        prog = sum_forked_program(values)
        result, _ = check_against_oracle(prog, SimConfig(n_cores=8))
        assert result.signed_outputs == [sum(values)]

    def test_section_count_matches_oracle(self):
        prog = sum_forked_program(paper_array(5))
        result, _ = check_against_oracle(prog, SimConfig(n_cores=5))
        assert result.sections == 6

    def test_single_core_still_correct(self):
        prog = sum_forked_program(paper_array(8))
        result, _ = check_against_oracle(prog, SimConfig(n_cores=1))
        assert result.signed_outputs == [36]

    def test_global_variable_through_dmh(self):
        prog = assemble("""
        main:
            fork f
            movq g, %rbx    # g was renamed by f, not yet in the DMH
            out %rbx
            endfork
        f:
            movq g, %rax    # reaches the loader image through the DMH
            addq $1, %rax
            movq %rax, g
            endfork
        .data
        g: .quad 41
        """)
        result, _ = check_against_oracle(prog)
        assert result.outputs == [42]


class TestPlacementPolicies:
    @pytest.mark.parametrize("policy", ["round_robin", "least_loaded",
                                        "same_core", "random"])
    def test_all_policies_correct(self, policy):
        prog = sum_forked_program(paper_array(10))
        config = SimConfig(n_cores=4, placement=policy)
        result, _ = check_against_oracle(prog, config)
        assert result.signed_outputs == [55]

    def test_same_core_uses_one_core(self):
        prog = sum_forked_program(paper_array(10))
        _, proc = simulate(prog, SimConfig(n_cores=4, placement="same_core"))
        used = [core.id for core in proc.cores if core.fetched]
        assert used == [0]


class TestMiniCOnSimulator:
    SRC = """
    long A[10] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
    long sum(long* t, long k) {
        if (k == 1) return t[0];
        return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
    }
    long main() { out(sum(A, 10)); return 0; }
    """

    def test_fork_mode_program(self):
        prog = compile_source(self.SRC, fork_mode=True)
        result, _ = check_against_oracle(prog, SimConfig(n_cores=8))
        assert result.signed_outputs == [39]

    def test_fork_loops_program(self):
        src = """
        long A[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        long B[8];
        long main() {
            long i;
            for (i = 0; i < 8; i = i + 1) { B[i] = A[i] * A[i]; }
            long s = 0;
            for (i = 0; i < 8; i = i + 1) { s = s + B[i]; }
            out(s);
            return 0;
        }
        """
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        result, _ = check_against_oracle(prog, SimConfig(n_cores=8))
        assert result.signed_outputs == [204]


class TestTimingProperties:
    def test_stage_order_monotonic(self):
        prog = sum_forked_program(paper_array(5))
        _, proc = simulate(prog, SimConfig(n_cores=5))
        for dyn in proc.all_instructions():
            stamps = [v for v in dyn.timing.row() if v is not None]
            assert stamps == sorted(stamps)
            assert dyn.timing.fd is not None
            assert dyn.timing.ret is not None

    def test_fetch_one_per_cycle_per_core(self):
        prog = sum_forked_program(paper_array(10))
        _, proc = simulate(prog, SimConfig(n_cores=4))
        for core in proc.cores:
            fetches = [d.timing.fd for sec in core.hosted
                       for d in sec.instructions]
            assert len(fetches) == len(set(fetches))

    def test_retire_in_order_per_section(self):
        prog = sum_forked_program(paper_array(10))
        _, proc = simulate(prog, SimConfig(n_cores=4))
        for sec in proc.sections:
            rets = [d.timing.ret for d in sec.instructions]
            assert rets == sorted(rets)

    def test_single_assignment_invariant(self):
        # Every renamed destination was written exactly once: Cell.fill
        # raises on double writes, so completing the run proves it; here we
        # additionally check all cells ended up full.
        prog = sum_forked_program(paper_array(8))
        _, proc = simulate(prog, SimConfig(n_cores=4))
        for sec in proc.sections:
            for dyn in sec.instructions:
                for cell in dyn.dest_cells.values():
                    assert cell.ready
            for cell in sec.maat.values():
                assert cell.ready

    def test_more_cores_not_slower(self):
        prog = sum_forked_program(paper_array(20))
        slow, _ = simulate(prog, SimConfig(n_cores=1))
        fast, _ = simulate(prog, SimConfig(n_cores=16))
        assert fast.fetch_end <= slow.fetch_end

    def test_parallel_fetch_beats_single_core(self):
        prog = sum_forked_program(paper_array(40))
        one, _ = simulate(prog, SimConfig(n_cores=1))
        many, _ = simulate(prog, SimConfig(n_cores=32))
        assert many.fetch_ipc > 1.5 * one.fetch_ipc


class TestFigure10:
    @pytest.fixture
    def fig10(self):
        from repro.paper import SUM_FORKED_ASM
        src = SUM_FORKED_ASM + "\n.data\nn: .quad 5\ntab: .quad 1,2,3,4,5\n"
        prog = assemble(src, entry="sum")
        init = {"rdi": prog.data_symbols["tab"], "rsi": 5}
        return simulate(prog, SimConfig(n_cores=5), initial_regs=init)

    def test_45_instructions_5_sections(self, fig10):
        result, _ = fig10
        assert result.instructions == 45       # paper: N(0) = 45
        assert result.sections == 5
        assert result.return_value == 15

    def test_core1_fetches_cycles_1_to_11(self, fig10):
        _, proc = fig10
        root = proc.order[0]
        assert [d.timing.fd for d in root.instructions] == list(range(1, 12))

    def test_paper_worked_example_instruction_1_8(self, fig10):
        # Paper Section 5: "instruction 1-8 (load) is handled by core 1,
        # fetched at cycle 8, register renamed at cycle 9, load address is
        # computed at 10 and renamed at cycle 11, renamed memory is
        # accessed at cycle 14 ... and retired at 15".
        _, proc = fig10
        root = proc.order[0]
        dyn = root.instructions[7]
        assert str(dyn.instr) == "movq (%rdi), %rax"
        assert dyn.timing.row() == (8, 9, 10, 11, 14, 15)

    def test_section2_starts_fetch_at_cycle_8(self, fig10):
        # Paper: fork fetched at 5 + 2-cycle creation => first fetch at 8.
        _, proc = fig10
        section2 = proc.order[1]
        assert section2.instructions[0].timing.fd == 8

    def test_fetch_time_close_to_paper(self, fig10):
        # Paper: 30 cycles; our creation-latency accounting gives 32.
        result, _ = fig10
        assert 30 <= result.fetch_end <= 34

    def test_timing_table_renders(self, fig10):
        _, proc = fig10
        table = proc.timing_table()
        assert "core 1 pipeline" in table
        assert "1-1" in table and "fork sum" in table
