"""Unit tests for sim/stats.py: request-latency summaries, occupancy
histograms and the JSON export surface."""

import json

from repro.minic import compile_source
from repro.sim import SimConfig, simulate
from repro.sim.stats import (CORE_STATES, SimResult, occupancy_counts,
                             request_latency_stats)


class TestRequestLatencyStats:
    def test_empty(self):
        stats = request_latency_stats([])
        assert stats == {"count": 0, "min": 0, "mean": 0.0, "p50": 0,
                         "p90": 0, "p99": 0, "max": 0}

    def test_single_element(self):
        stats = request_latency_stats([7])
        assert stats["count"] == 1
        assert (stats["min"] == stats["p50"] == stats["p90"]
                == stats["p99"] == stats["max"] == 7)
        assert stats["mean"] == 7.0

    def test_all_equal(self):
        stats = request_latency_stats([4] * 9)
        assert stats["count"] == 9
        assert (stats["min"] == stats["p50"] == stats["p90"]
                == stats["p99"] == stats["max"] == 4)
        assert stats["mean"] == 4.0

    def test_mixed_percentiles(self):
        stats = request_latency_stats(list(range(1, 11)))   # 1..10
        assert stats["min"] == 1 and stats["max"] == 10
        assert stats["p50"] == 5     # nearest rank: ceil(10 * 0.50) = 5th
        assert stats["p90"] == 9     # 9th value, NOT the max
        assert stats["p99"] == 10
        assert stats["mean"] == 5.5

    def test_p90_distinct_from_max(self):
        # The old float-indexed convention returned the max for p90 of 10
        # samples; nearest rank must return the 9th.
        lat = [1] * 9 + [1000]
        stats = request_latency_stats(lat)
        assert stats["p90"] == 1
        assert stats["p99"] == 1000
        assert stats["max"] == 1000

    def test_nearest_rank_integer_exact(self):
        # 100 samples: p99 is exactly the 99th value (float ceil of
        # 0.99 * 100 overshoots to 100 under IEEE rounding).
        stats = request_latency_stats(list(range(100)))
        assert stats["p99"] == 98
        assert stats["p50"] == 49
        assert stats["p90"] == 89

    def test_unsorted_input(self):
        assert request_latency_stats([9, 1, 5])["p50"] == 5

    def test_method_delegates_to_module_function(self):
        result = _tiny_result(request_latencies=[3, 3, 9])
        assert result.request_latency_stats() == request_latency_stats([3, 3, 9])


def _tiny_result(**overrides):
    base = dict(cycles=10, instructions=5, sections=1, outputs=[],
                final_regs={}, final_memory={}, fetch_end=5, retire_end=9,
                fetch_computed=3, requests=2, request_hops=4)
    base.update(overrides)
    return SimResult(**base)


PROGRAM = """
long A[6] = {4, 1, 6, 2, 9, 5};
long sum(long* t, long k) {
    if (k == 1) return t[0];
    return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
}
long main() { out(sum(A, 6)); return 0; }
"""


def _run(**cfg):
    prog = compile_source(PROGRAM, fork_mode=True)
    return simulate(prog, SimConfig(**cfg))[0]


class TestOccupancyHistograms:
    def test_counts_roundtrip(self):
        assert occupancy_counts([1, 2, 3, 4]) == {
            "fetching": 1, "computing": 2, "blocked": 3, "parked": 4}

    def test_core_histograms_sum_to_cycles(self):
        result = _run(n_cores=4)
        assert len(result.core_occupancy) == 4
        for histogram in result.core_occupancy:
            assert set(histogram) == set(CORE_STATES)
            assert sum(histogram.values()) == result.cycles

    def test_single_core_never_parks_while_working(self):
        result = _run(n_cores=1)
        histogram = result.core_occupancy[0]
        assert histogram["fetching"] > 0
        assert sum(histogram.values()) == result.cycles

    def test_idle_cores_park(self):
        # With far more cores than sections, most cores never host work
        # and must be accounted as parked for the whole run.
        result = _run(n_cores=64)
        untouched = [h for h, fetched in zip(result.core_occupancy,
                                             result.per_core_instructions)
                     if fetched == 0]
        assert untouched, "expected idle cores at 64 cores"
        assert all(h["parked"] == result.cycles and h["fetching"] == 0
                   for h in untouched)

    def test_section_occupancy_covers_every_section(self):
        result = _run(n_cores=4)
        assert set(result.section_occupancy) == set(
            range(1, result.sections + 1))
        for entry in result.section_occupancy.values():
            assert entry["completed"] >= entry["created"]
            assert entry["fetch_cycles"] > 0
            assert entry["blocked_cycles"] >= 0

    def test_occupancy_summary_fractions(self):
        summary = _run(n_cores=4).occupancy_summary()
        assert set(summary) == set(CORE_STATES)
        assert abs(sum(summary.values()) - 1.0) < 1e-9

    def test_collect_occupancy_off(self):
        result = _run(n_cores=4, collect_occupancy=False)
        assert result.core_occupancy == []
        assert result.section_occupancy == {}
        assert result.occupancy_summary() == {s: 0.0 for s in CORE_STATES}

    def test_trace_opt_in(self):
        assert _run(n_cores=2).trace is None
        traced = _run(n_cores=2, trace=True)
        assert len(traced.trace) == 2
        assert all(len(row) == traced.cycles for row in traced.trace)
        assert set("".join(traced.trace)) <= set("FCBP")


class TestNocStats:
    def test_counters_present_and_consistent(self):
        result = _run(n_cores=8)
        stats = result.noc_stats
        assert stats["messages"] > 0
        assert stats["hop_cycles"] >= stats["messages"]
        assert stats["dmh_reads"] > 0

    def test_single_core_sends_no_messages(self):
        assert _run(n_cores=1).noc_stats["messages"] == 0


class TestResultEdgeCases:
    def test_zero_cycle_result_summary_and_json(self):
        # A synthetic zero-cycle run: no occupancy, no IPC, no crash.
        result = _tiny_result(cycles=0, instructions=0, fetch_end=0,
                              retire_end=0)
        assert result.occupancy_summary() == {s: 0.0 for s in CORE_STATES}
        assert result.fetch_ipc == 0.0 and result.retire_ipc == 0.0
        payload = result.to_json_dict()
        assert payload["cycles"] == 0
        assert payload["occupancy_summary"] == {s: 0.0 for s in CORE_STATES}
        json.dumps(payload)

    def test_occupancy_summary_all_zero_histograms(self):
        result = _tiny_result(
            core_occupancy=[{s: 0 for s in CORE_STATES}] * 3)
        assert result.occupancy_summary() == {s: 0.0 for s in CORE_STATES}

    def test_json_without_observability_layers(self):
        # occupancy off, no trace, no events: the optional keys stay out
        # and nothing dereferences the absent layers.
        result = _run(n_cores=2, collect_occupancy=False)
        assert result.trace is None and result.events is None
        assert result.stall_causes is None
        payload = result.to_json_dict(include_trace=True,
                                      include_events=True)
        assert "trace" not in payload
        assert "events" not in payload
        assert "stall_causes" not in payload
        assert payload["core_occupancy"] == []
        json.dumps(payload)

    def test_events_config_forces_occupancy(self):
        result = _run(n_cores=2, collect_occupancy=False, events=True)
        assert result.core_occupancy, "events=True must imply occupancy"
        assert result.events is not None
        assert result.stall_causes is not None
        # trace stays opt-in even though events collected the timeline
        assert result.trace is None

    def test_json_with_events(self):
        result = _run(n_cores=2, events=True)
        payload = result.to_json_dict(include_events=True)
        assert payload["stall_causes"]["totals"]
        assert len(payload["events"]) == len(result.events)
        assert payload["events"][0]["kind"]
        parsed = json.loads(json.dumps(payload))
        assert parsed["stall_causes"]["causes"] == list(
            result.stall_causes["causes"])

    def test_events_excluded_by_default(self):
        payload = _run(n_cores=2, events=True).to_json_dict()
        assert "events" not in payload
        assert "stall_causes" in payload


class TestJsonExport:
    def test_to_json_dict_is_json_serializable(self):
        result = _run(n_cores=4, trace=True)
        payload = result.to_json_dict(include_memory=True, include_trace=True)
        text = json.dumps(payload)
        parsed = json.loads(text)
        assert parsed["cycles"] == result.cycles
        assert parsed["scheduler"] == "event"
        assert parsed["request_latency"]["count"] == len(
            result.request_latencies)
        assert parsed["trace"] == result.trace
        assert len(parsed["section_occupancy"]) == result.sections

    def test_memory_and_trace_excluded_by_default(self):
        payload = _run(n_cores=2).to_json_dict()
        assert "final_memory" not in payload
        assert "trace" not in payload
        assert payload["final_memory_words"] > 0
