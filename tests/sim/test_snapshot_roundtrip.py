"""Snapshot round-trip: capture -> serialize -> restore -> run == cold.

Property-based core of the snapshot contract: for random small programs,
random checkpoint cycles and every kernel, a run resumed from a snapshot
that went through the full binary wire format (``to_bytes`` ->
``from_bytes``) must be bit-identical to the cold run on every compared
result field.  Plus deterministic unit coverage of the envelope itself:
versioning, magic, digest integrity, save/load, content addressing.
"""

import zlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.minic import compile_source
from repro.sim import SimConfig, simulate
from repro.snapshot import (SNAPSHOT_SCHEMA_VERSION, Snapshot,
                            SnapshotError, capture_prefix, program_digest,
                            resume)

from .test_differential_vector import COMPARED_FIELDS, _reduce_program

_values = st.lists(st.integers(min_value=-40, max_value=40),
                   min_size=4, max_size=8)


def _assert_identical(warm, cold, label):
    for name in COMPARED_FIELDS:
        assert getattr(warm, name) == getattr(cold, name), (
            "field %r differs between resumed and cold runs (%s)"
            % (name, label))


class TestRandomizedRoundTrip:
    """serialize -> restore -> run equals cold, for random programs ×
    random checkpoint fractions × every kernel."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=_values, op=st.sampled_from(["+", "^", "min"]),
           kernel=st.sampled_from(["naive", "event", "vector"]),
           n_cores=st.sampled_from([1, 4, 9]),
           frac_pct=st.integers(min_value=5, max_value=95))
    def test_resume_equals_cold(self, values, op, kernel, n_cores,
                                frac_pct):
        prog = compile_source(_reduce_program(values, op, 2),
                              fork_mode=True)
        cfg = SimConfig(n_cores=n_cores, kernel=kernel, events=True,
                        metrics_window=17)
        cold, _ = simulate(prog, cfg)
        cycle = max(1, cold.cycles * frac_pct // 100)
        snap = capture_prefix(prog, cycle, cfg)
        assert snap.kernel == kernel
        # the full wire round trip, not just the in-memory object
        snap = Snapshot.from_bytes(snap.to_bytes())
        warm, _ = resume(snap, program=prog, config=cfg)
        _assert_identical(warm, cold,
                          "%s @%d/%d" % (kernel, cycle, cold.cycles))


class _TinyRun:
    SOURCE = """
    long A[6] = {3, 1, 4, 1, 5, 9};
    long combine(long a, long b) { return a + b; }
    long red(long* t, long k) {
        if (k == 1) return t[0];
        long cut = k / 2 == 0 ? 1 : k / 2;
        return combine(red(t, cut), red(t + cut, k - cut));
    }
    long main() { out(red(A, 6)); return 0; }
    """

    @classmethod
    def program(cls):
        return compile_source(cls.SOURCE, fork_mode=True)


class TestEnvelope:
    def _snap(self, cycle=5):
        return capture_prefix(_TinyRun.program(), cycle,
                              SimConfig(n_cores=4))

    def test_bytes_roundtrip_preserves_everything(self):
        snap = self._snap()
        back = Snapshot.from_bytes(snap.to_bytes())
        assert (back.cycle, back.kernel, back.config, back.program_sha,
                back.state) == (snap.cycle, snap.kernel, snap.config,
                                snap.program_sha, snap.state)

    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError, match="bad magic"):
            Snapshot.from_bytes(b"NOPE" + b"\0" * 64)

    def test_truncated_rejected(self):
        with pytest.raises(SnapshotError):
            Snapshot.from_bytes(self._snap().to_bytes()[:40])

    def test_other_schema_version_rejected(self):
        data = bytearray(self._snap().to_bytes())
        # the schema u32 sits right after the 4-byte magic
        data[4:8] = (SNAPSHOT_SCHEMA_VERSION + 1).to_bytes(4, "big")
        with pytest.raises(SnapshotError, match="schema v%d"
                           % (SNAPSHOT_SCHEMA_VERSION + 1)):
            Snapshot.from_bytes(bytes(data))

    def test_corrupt_state_rejected(self):
        snap = self._snap()
        data = bytearray(snap.to_bytes())
        # recompress different state bytes so zlib still decodes but the
        # digest no longer matches the header
        tail = len(zlib.compress(snap.state, 6))
        evil = bytearray(snap.state)
        evil[len(evil) // 2] ^= 0xFF
        data[-tail:] = zlib.compress(bytes(evil), 6)
        with pytest.raises(SnapshotError, match="digest mismatch"):
            Snapshot.from_bytes(bytes(data))

    def test_save_load(self, tmp_path):
        snap = self._snap()
        path = snap.save(tmp_path / "deep" / "snap.rsnp")
        back = Snapshot.load(path)
        assert back.cycle == snap.cycle
        assert back.state == snap.state

    def test_load_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            Snapshot.load(tmp_path / "absent.rsnp")

    def test_key_is_content_address(self):
        snap = self._snap()
        import hashlib
        assert snap.key() == hashlib.sha256(snap.to_bytes()).hexdigest()

    def test_program_digest_tracks_listing(self):
        prog = _TinyRun.program()
        assert program_digest(prog) == program_digest(_TinyRun.program())


class TestCaptureSemantics:
    def test_checkpoint_cycles_populate_processor(self):
        prog = _TinyRun.program()
        cfg = SimConfig(n_cores=4, checkpoint_cycles=(3, 7))
        result, proc = simulate(prog, cfg)
        assert [s.cycle for s in proc.checkpoints] == [3, 7]
        assert result.cycles > 7

    def test_trailing_labels_collapse_to_final_state(self):
        prog = _TinyRun.program()
        cfg = SimConfig(n_cores=4, checkpoint_cycles=(3, 10 ** 9))
        result, proc = simulate(prog, cfg)
        assert [s.cycle for s in proc.checkpoints] == [3, result.cycles]

    def test_capture_prefix_abandons_the_run(self):
        prog = _TinyRun.program()
        cfg = SimConfig(n_cores=4)
        cold, _ = simulate(prog, cfg)
        snap = capture_prefix(prog, max(1, cold.cycles // 2), cfg)
        proc = snap.restore()
        assert proc.cycle == snap.cycle < cold.cycles

    def test_checkpointing_does_not_perturb_results(self):
        prog = _TinyRun.program()
        plain, _ = simulate(prog, SimConfig(n_cores=4, events=True))
        ticked, _ = simulate(prog, SimConfig(n_cores=4, events=True,
                                             checkpoint_cycles=(2, 5, 9)))
        _assert_identical(ticked, plain, "checkpointed vs plain")

    def test_future_label_rejected(self):
        snap = capture_prefix(_TinyRun.program(), 4, SimConfig(n_cores=4))
        proc = snap.restore()
        with pytest.raises(SnapshotError, match="future cycle"):
            Snapshot.capture(proc, cycle=proc.cycle + 10)

    def test_resumed_run_recaptures_future_checkpoints(self):
        prog = _TinyRun.program()
        snap = capture_prefix(prog, 3, SimConfig(n_cores=4))
        _, proc = resume(snap, checkpoint_cycles=[1, 3, 6])
        # labels at or before the snapshot are dropped, not re-captured
        assert [s.cycle for s in proc.checkpoints] == [6]


class TestResumeGuards:
    def test_program_mismatch_rejected(self):
        snap = capture_prefix(_TinyRun.program(), 4, SimConfig(n_cores=4))
        other = compile_source(
            "long main() { out(1); return 0; }", fork_mode=True)
        with pytest.raises(SnapshotError, match="program mismatch"):
            resume(snap, program=other)

    def test_config_mismatch_rejected(self):
        snap = capture_prefix(_TinyRun.program(), 4, SimConfig(n_cores=4))
        with pytest.raises(SnapshotError, match="config mismatch.*n_cores"):
            resume(snap, config=SimConfig(n_cores=8))

    def test_overridable_knobs_do_not_mismatch(self):
        prog = _TinyRun.program()
        snap = capture_prefix(prog, 4, SimConfig(n_cores=4))
        cold, _ = simulate(prog, SimConfig(n_cores=4))
        warm, _ = resume(snap, config=SimConfig(
            n_cores=4, checkpoint_cycles=(10 ** 9,)))
        assert warm.cycles == cold.cycles
