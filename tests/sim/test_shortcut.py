"""The stack shortcut (paper Section 4.2, statement ii) and the loop-fork
frame rules: correctness on disciplined programs, effectiveness, and the
documented unsafe case that keeps it opt-in."""

import pytest

from repro.fork import fork_transform
from repro.machine import run_forked, run_sequential
from repro.minic import compile_source
from repro.sim import SimConfig, simulate

DC_SOURCE = """
long A[32];
long weighted(long lo, long hi) {
    if (hi - lo == 1) return A[lo] * lo;
    long mid = lo + (hi - lo) / 2;
    return weighted(lo, mid) + weighted(mid, hi);
}
long main() { out(weighted(0, 32)); return 0; }
"""

LOOP_SOURCE = """
long A[24];
long n = 24;
long main() {
    long bound = n;
    long i;
    for (i = 0; i < bound; i = i + 1) A[i] = i * 5 %% 7;
    long s = 0;
    for (i = 0; i < bound; i = i + 1) s = s + A[i] * A[i];
    out(s);
    return 0;
}
""".replace("%%", "%")


def both_ways(prog, cores=8):
    oracle, _ = run_forked(prog)
    plain, _ = simulate(prog, SimConfig(n_cores=cores, stack_shortcut=False))
    fast, _ = simulate(prog, SimConfig(n_cores=cores, stack_shortcut=True))
    assert plain.outputs == oracle.output
    assert fast.outputs == oracle.output
    return plain, fast


class TestCorrectnessWithShortcut:
    def test_divide_and_conquer(self):
        prog = compile_source(DC_SOURCE, fork_mode=True)
        both_ways(prog)

    def test_forked_loops(self):
        prog = compile_source(LOOP_SOURCE, fork_mode=True, fork_loops=True)
        both_ways(prog)

    def test_binary_transform(self):
        prog = fork_transform(compile_source(DC_SOURCE))
        both_ways(prog)

    def test_paper_sum(self):
        from repro.paper import paper_array, sum_forked_program
        prog = sum_forked_program(paper_array(20))
        plain, fast = both_ways(prog)
        assert fast.signed_outputs == [210]

    def test_accumulator_across_loop_bodies(self):
        # Loop bodies write a frame accumulator: the forkloop link must not
        # be cut away (this was a real bug during development).
        src = """
        long main() {
            long total = 0;
            long i;
            for (i = 1; i < 20; i = i + 1) {
                total = total + i * i;
            }
            out(total);
            return 0;
        }
        """
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        plain, fast = both_ways(prog)
        assert fast.signed_outputs == [2470]


class TestEffectiveness:
    def test_shortcut_speeds_up_compiled_code(self):
        # Frame-variable branches stall fetch until renaming replies; the
        # shortcut is what makes compiled (stack-based) code fetch in
        # parallel at all.
        prog = fork_transform(compile_source(DC_SOURCE))
        plain, fast = both_ways(prog, cores=16)
        assert fast.fetch_end < plain.fetch_end / 2

    def test_shortcut_requests_resolve_earlier(self):
        prog = compile_source(DC_SOURCE, fork_mode=True)
        plain, _ = simulate(prog, SimConfig(n_cores=16))
        fast, _ = simulate(prog, SimConfig(n_cores=16, stack_shortcut=True))
        assert fast.retire_end < plain.retire_end


class TestRegisterCarriedLoops:
    def test_forkloop_emitted(self):
        from repro.minic import compile_to_asm
        text = compile_to_asm(LOOP_SOURCE, fork_mode=True, fork_loops=True)
        assert "forkloop" in text

    def test_register_loop_used_for_canonical_form(self):
        from repro.minic import compile_to_asm
        text = compile_to_asm(LOOP_SOURCE, fork_mode=True, fork_loops=True)
        # the counter bookkeeping runs on a fork-copied scratch register
        assert "%r15" in text or "%r12" in text

    def test_noncanonical_form_falls_back(self):
        from repro.minic import compile_to_asm
        src = """
        long A[8];
        long main() {
            long i;
            for (i = 0; i + 1 < 8; i = i + 1) A[i] = i;  // cond not i<limit
            out(A[3]);
            return 0;
        }
        """
        text = compile_to_asm(src, fork_mode=True, fork_loops=True)
        assert "forkloop" in text        # still forked, memory-carried
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        both_ways(prog)

    def test_body_modifying_counter_falls_back(self):
        src = """
        long main() {
            long s = 0;
            long i;
            for (i = 0; i < 20; i = i + 1) {
                if (i == 5) i = 10;     // assigns the counter
                s = s + i;
            }
            out(s);
            return 0;
        }
        """
        seq = run_sequential(compile_source(src))
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        forked, _ = run_forked(prog)
        assert forked.output == seq.output
        plain, fast = both_ways(prog)
        assert fast.outputs == seq.output

    def test_downward_loop(self):
        src = """
        long main() {
            long s = 0;
            long i;
            for (i = 10; i > 0; i = i - 1) s = s + i;
            out(s);
            return 0;
        }
        """
        seq = run_sequential(compile_source(src))
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        plain, fast = both_ways(prog)
        assert fast.signed_outputs == seq.signed_output == [55]

    def test_nested_register_loops(self):
        src = """
        long M[36];
        long main() {
            long i;
            long j;
            for (i = 0; i < 6; i = i + 1) {
                for (j = 0; j < 6; j = j + 1) {
                    M[i * 6 + j] = i * 10 + j;
                }
            }
            out(M[0] + M[35] + M[7]);
            return 0;
        }
        """
        seq = run_sequential(compile_source(src))
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        plain, fast = both_ways(prog)
        assert fast.outputs == seq.output

    def test_counter_value_after_loop(self):
        src = """
        long main() {
            long i;
            long s = 0;
            for (i = 0; i < 7; i = i + 1) s = s + 1;
            out(i);                       // 7: the first failing value
            return 0;
        }
        """
        seq = run_sequential(compile_source(src))
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        plain, fast = both_ways(prog)
        assert fast.signed_outputs == seq.signed_output == [7]
