"""64-bit dtype regression: values through the numpy register file.

The vector kernel stores fetch register files in ``uint64`` numpy planes
(:class:`repro.sim.vectorized.RegTable`).  A Python int survives that
round trip only if it was pre-masked to ``[0, 2**64)`` — a negative or
131-bit intermediate stored raw would either truncate silently (numpy
1.x) or raise (numpy 2.x).  These tests push the hostile values through
both levels: the raw RegTable/RegFileSoA write path, and whole programs
whose registers hold negatives, values at and above ``2**31`` (the
classic int32 cliff) and both 64-bit wraparound edges, checked across
all three kernels and against the repro.machine oracles.
"""

import pytest

from repro.fork import fork_transform
from repro.machine import run_forked, run_sequential
from repro.minic import compile_source
from repro.sim import SimConfig, simulate
from repro.sim.cells import Cell
from repro.sim.vectorized import (EMPTY, FULL, PENDING, REG_INDEX,
                                  RegFileSoA, RegTable)

WRAP = 1 << 64
MASK = WRAP - 1

KERNELS = ("naive", "event", "vector")


def c_wrap(value):
    """Wrap a Python int to C long (two's complement signed 64-bit)."""
    value &= MASK
    return value - WRAP if value >= (1 << 63) else value


#: every value class the register file must carry exactly: negatives,
#: the int32 cliff, both signed-64 extremes, and wraparound products
EDGE_SOURCE = """
long big(long k) {
    if (k == 0) return 1;
    return big(k - 1) * 2;
}
long main() {
    long p62 = big(62);
    out(0 - 1);
    out(big(31));
    out(0 - big(31) - 1);
    out(p62 * 2 - 1);
    out(0 - p62 - p62);
    out(p62 * 2);
    return 0;
}
"""

EDGE_EXPECTED = [-1, 2**31, -(2**31) - 1, 2**63 - 1, -(2**63),
                 c_wrap(2**63)]


class TestRegTable:
    def test_values_survive_the_uint64_plane_exactly(self):
        table = RegTable(capacity=1)
        fregs = RegFileSoA(table, table.alloc(), {})
        for i, value in enumerate([0, 1, 2**31, 2**63 - 1, 2**63,
                                   WRAP - 1, (-1) & MASK,
                                   (-(2**63)) & MASK]):
            reg = "r%d" % (8 + i)
            fregs[reg] = Cell.full(value)
            assert int(table.values[fregs.row, REG_INDEX[reg]]) == value
            assert fregs[reg].value == value

    def test_pending_then_empty_transitions(self):
        table = RegTable(capacity=1)
        fregs = RegFileSoA(table, table.alloc(), {})
        cell = Cell(origin="test")
        fregs["rax"] = cell
        assert table.state[fregs.row, REG_INDEX["rax"]] == PENDING
        del fregs["rax"]
        assert table.state[fregs.row, REG_INDEX["rax"]] == EMPTY
        fregs["rax"] = Cell.full(WRAP - 1)
        assert table.state[fregs.row, REG_INDEX["rax"]] == FULL
        assert int(table.values[fregs.row, REG_INDEX["rax"]]) == WRAP - 1

    def test_unmasked_store_fails_loudly(self):
        # numpy 2.x refuses out-of-range uint64 stores: a masking bug
        # upstream surfaces as an exception, never silent truncation
        table = RegTable(capacity=1)
        fregs = RegFileSoA(table, table.alloc(), {})
        with pytest.raises(OverflowError):
            fregs["rax"] = Cell.full(-1)
        with pytest.raises(OverflowError):
            fregs["rbx"] = WRAP

    def test_growth_preserves_rows(self):
        table = RegTable(capacity=1)
        files = []
        for i in range(5):
            files.append(RegFileSoA(table, table.alloc(),
                                    {"rax": Cell.full(2**63 + i)}))
        for i, fregs in enumerate(files):
            assert int(table.values[fregs.row,
                                    REG_INDEX["rax"]]) == 2**63 + i


class TestEdgeValuePrograms:
    @pytest.fixture(scope="class")
    def runs(self):
        prog = compile_source(EDGE_SOURCE, fork_mode=True)
        return {kernel: simulate(prog, SimConfig(n_cores=4,
                                                 kernel=kernel))[0]
                for kernel in KERNELS}

    def test_signed_outputs_are_the_edge_values(self, runs):
        for kernel in KERNELS:
            assert runs[kernel].signed_outputs == EDGE_EXPECTED, kernel

    def test_kernels_identical_on_edge_values(self, runs):
        ref = runs["naive"]
        for kernel in ("event", "vector"):
            res = runs[kernel]
            assert res.outputs == ref.outputs
            assert res.final_regs == ref.final_regs
            assert res.final_memory == ref.final_memory
            assert res.cycles == ref.cycles

    def test_matches_machine_oracles(self, runs):
        seq = run_sequential(compile_source(EDGE_SOURCE))
        forked, _ = run_forked(compile_source(EDGE_SOURCE, fork_mode=True))
        assert forked.output == seq.output
        for kernel in KERNELS:
            assert runs[kernel].outputs == seq.output

    def test_edge_values_cross_section_boundaries(self, runs):
        # the recursion forks sections, so the 2**62 partial products
        # travel through renaming requests and the RegTable planes —
        # a single-section run would not exercise the remote path
        assert runs["vector"].sections > 1
        assert runs["vector"].requests > 0


class TestEdgeValuesInMemory:
    SOURCE = """
    long A[3];
    long big(long k) {
        if (k == 0) return 1;
        return big(k - 1) * 2;
    }
    long main() {
        A[0] = 0 - big(31);
        A[1] = big(62) * 2 - 1;
        A[2] = 0 - big(62) - big(62);
        out(A[0] + A[1] + A[2]);
        out(A[1]);
        return 0;
    }
    """

    def test_store_load_of_wide_values(self):
        prog = compile_source(self.SOURCE, fork_mode=True)
        expected = [c_wrap(-(2**31) + (2**63 - 1) + -(2**63)), 2**63 - 1]
        results = [simulate(prog, SimConfig(n_cores=4, kernel=k))[0]
                   for k in KERNELS]
        for res in results:
            assert res.signed_outputs == expected
            assert res.final_memory == results[0].final_memory
