"""Differential harness: the event-driven fast path must be bit-identical
to the naive every-core-every-cycle scheduler.

Every program here is driven through ``SimConfig(event_driven=False)`` and
``SimConfig(event_driven=True)`` under a matrix of core counts, placements,
topologies and shortcut settings, and the two runs must agree on *every*
architectural and micro-architectural outcome: cycle count, outputs, final
registers, final memory, request counts/hops/latencies, per-core
instruction counts, occupancy histograms, NoC counters — and, where
enabled, the full per-cycle core-state trace.  Any scheduling bug in the
fast path (a missed wake-up, an over-eager cycle skip, a reordered
request) shows up as a field mismatch.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fork import fork_transform
from repro.minic import compile_source
from repro.sim import SimConfig, simulate
from repro.workloads import get_workload

#: SimResult fields that must match bit-for-bit between scheduler modes
COMPARED_FIELDS = (
    "cycles", "instructions", "sections", "outputs", "final_regs",
    "final_memory", "fetch_end", "retire_end", "fetch_computed",
    "requests", "request_hops", "per_core_instructions",
    "request_latencies", "core_occupancy", "section_occupancy",
    "noc_stats", "trace", "events", "stall_causes",
)


def run_both(prog, **cfg_kwargs):
    naive, _ = simulate(prog, SimConfig(event_driven=False, **cfg_kwargs))
    event, _ = simulate(prog, SimConfig(event_driven=True, **cfg_kwargs))
    return naive, event


def assert_identical(prog, **cfg_kwargs):
    naive, event = run_both(prog, **cfg_kwargs)
    assert naive.scheduler == "naive" and event.scheduler == "event"
    for name in COMPARED_FIELDS:
        assert getattr(naive, name) == getattr(event, name), (
            "field %r differs between schedulers under %r"
            % (name, cfg_kwargs))
    return naive, event


# -- fixed corpus -------------------------------------------------------------

RECURSIVE_SUM = """
long A[9] = {3, -1, 4, 1, -5, 9, 2, 6, -5};
long sum(long* t, long k) {
    if (k == 1) return t[0];
    return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
}
long main() { out(sum(A, 9)); return 0; }
"""

STORE_HEAVY = """
long A[8] = {7, 3, 9, 1, 8, 2, 6, 4};
long B[8];
long copy(long* dst, long* src, long k) {
    if (k == 1) { dst[0] = src[0] * 2; return 0; }
    copy(dst, src, k / 2);
    copy(dst + k / 2, src + k / 2, k - k / 2);
    return 0;
}
long main() {
    copy(B, A, 8);
    long i;
    for (i = 0; i < 8; i = i + 1) out(B[i]);
    return 0;
}
"""

LOOPY = """
long main() {
    long i;
    long s = 0;
    for (i = 1; i <= 12; i = i + 1) {
        long x = i;
        while (x > 1) {
            x = x % 2 == 0 ? x / 2 : x * 3 + 1;
            s = s + 1;
        }
        out(s);
    }
    return s;
}
"""


class TestFixedCorpus:
    @pytest.mark.parametrize("n_cores", [1, 2, 5, 64])
    def test_recursive_sum(self, n_cores):
        prog = compile_source(RECURSIVE_SUM, fork_mode=True)
        naive, event = assert_identical(prog, n_cores=n_cores)
        assert naive.outputs == [3 - 1 + 4 + 1 - 5 + 9 + 2 + 6 - 5]

    @pytest.mark.parametrize("placement", ["round_robin", "least_loaded",
                                           "random", "same_core"])
    def test_store_heavy_placements(self, placement):
        prog = compile_source(STORE_HEAVY, fork_mode=True)
        naive, _ = assert_identical(prog, n_cores=6, placement=placement)
        assert naive.outputs == [14, 6, 18, 2, 16, 4, 12, 8]

    @pytest.mark.parametrize("topology", ["uniform", "mesh"])
    def test_topologies(self, topology):
        prog = compile_source(RECURSIVE_SUM, fork_mode=True)
        assert_identical(prog, n_cores=9, topology=topology, noc_latency=2)

    def test_stack_shortcut(self):
        prog = compile_source(RECURSIVE_SUM, fork_mode=True)
        assert_identical(prog, n_cores=8, stack_shortcut=True)

    def test_sequential_control_flow(self):
        # A single section exercises the fetch/stall/resume machinery
        # without any cross-core traffic.
        prog = compile_source(LOOPY, fork_mode=True)
        assert_identical(prog, n_cores=4)

    def test_fork_loops(self):
        src = """
        long A[10] = {5, 2, 8, 1, 9, 3, 7, 4, 6, 0};
        long main() {
            long i;
            long s = 0;
            for (i = 0; i < 10; i = i + 1) {
                s = s + A[i] * (i + 1);
                out(s);
            }
            return s;
        }
        """
        prog = compile_source(src, fork_mode=True, fork_loops=True)
        assert_identical(prog, n_cores=8)

    def test_traces_match_cycle_for_cycle(self):
        prog = compile_source(STORE_HEAVY, fork_mode=True)
        naive, event = assert_identical(prog, n_cores=8, trace=True)
        assert naive.trace is not None
        # one state code per core per cycle, in both modes
        assert all(len(t) == naive.cycles for t in naive.trace)
        assert naive.trace == event.trace

    def test_deadlock_diagnostic_identical(self):
        # An unproducible import deadlocks the run; both schedulers must
        # hit the cycle budget with the same error at the same cycle.
        prog = compile_source(RECURSIVE_SUM, fork_mode=True)
        errors = {}
        for mode in (False, True):
            cfg = SimConfig(n_cores=4, max_cycles=200, event_driven=mode)
            with pytest.raises(Exception) as info:
                simulate(prog, cfg)
            errors[mode] = str(info.value)
        assert errors[False] == errors[True]
        assert "cycle budget exhausted at cycle 201" in errors[False]


class TestWorkloadDifferential:
    @pytest.mark.parametrize("short,n", [("quicksort", 10),
                                         ("dictionary", 10), ("bfs", 6)])
    def test_workload_identical_across_schedulers(self, short, n):
        inst = get_workload(short).instance(n=n, seed=7)
        prog = fork_transform(inst.program)
        for cfg in ({"n_cores": 4}, {"n_cores": 16, "stack_shortcut": True},
                    {"n_cores": 64, "placement": "least_loaded"}):
            naive, _ = assert_identical(prog, **cfg)
            assert naive.signed_outputs == inst.expected_output


class TestEventStreamDifferential:
    """The structured event stream and the stall-cause attribution must be
    equal between scheduler modes — the core contract of the observability
    layer (park/wake events are synthesized from the mode-identical state
    timeline, everything else from state transitions PR 1 proved equal)."""

    @pytest.mark.parametrize("short,n", [("quicksort", 10),
                                         ("dictionary", 10), ("bfs", 6)])
    def test_workload_event_streams_identical(self, short, n):
        inst = get_workload(short).instance(n=n, seed=7)
        prog = fork_transform(inst.program)
        naive, event = assert_identical(prog, n_cores=8, events=True)
        assert naive.events is not None and naive.events == event.events
        assert naive.stall_causes == event.stall_causes

    @pytest.mark.parametrize("cfg", [
        {"n_cores": 5}, {"n_cores": 9, "topology": "mesh", "noc_latency": 2},
        {"n_cores": 8, "stack_shortcut": True},
    ])
    def test_fixed_corpus_event_streams_identical(self, cfg):
        prog = compile_source(RECURSIVE_SUM, fork_mode=True)
        naive, event = assert_identical(prog, events=True, **cfg)
        assert naive.events == event.events

    def test_stream_is_well_formed(self):
        from repro.obs import EVENT_KINDS
        prog = compile_source(STORE_HEAVY, fork_mode=True)
        _, event = run_both(prog, n_cores=6, events=True)
        assert event.events, "a forked run must emit events"
        cycles = [c for c, _, _ in event.events]
        assert cycles == sorted(cycles), "stream must be cycle-ordered"
        assert {k for _, k, _ in event.events} <= set(EVENT_KINDS)

    def test_stall_attribution_consistent_with_occupancy(self):
        prog = compile_source(STORE_HEAVY, fork_mode=True)
        _, event = run_both(prog, n_cores=6, events=True)
        causes = event.stall_causes
        for core_counts, histogram in zip(causes["per_core"],
                                          event.core_occupancy):
            assert sum(core_counts.values()) == (histogram["blocked"]
                                                 + histogram["parked"])
        for sid, counts in causes["per_section"].items():
            occ = event.section_occupancy[sid]
            assert sum(counts.values()) == occ["blocked_cycles"]
        for cause in causes["totals"]:
            assert causes["totals"][cause] == sum(
                c[cause] for c in causes["per_core"])

    def test_events_off_leaves_result_clean(self):
        prog = compile_source(RECURSIVE_SUM, fork_mode=True)
        naive, event = run_both(prog, n_cores=4)
        assert naive.events is None and event.events is None
        assert naive.stall_causes is None and event.stall_causes is None


# -- randomized MiniC programs ------------------------------------------------

_values = st.lists(st.integers(min_value=-40, max_value=40),
                   min_size=4, max_size=10)


def _reduce_program(values, op, fanout):
    body = {"+": "a + b", "^": "a ^ b", "min": "a < b ? a : b"}[op]
    return """
    long A[%d] = {%s};
    long combine(long a, long b) { return %s; }
    long red(long* t, long k) {
        if (k == 1) return t[0];
        long cut = k / %d == 0 ? 1 : k / %d;
        return combine(red(t, cut), red(t + cut, k - cut));
    }
    long main() { out(red(A, %d)); return 0; }
    """ % (len(values), ", ".join(str(v) for v in values), body,
           fanout, fanout, len(values))


class TestRandomizedDifferential:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=_values, op=st.sampled_from(["+", "^", "min"]),
           fanout=st.integers(min_value=2, max_value=3),
           n_cores=st.sampled_from([1, 3, 8]),
           shortcut=st.booleans())
    def test_random_reductions(self, values, op, fanout, n_cores, shortcut):
        prog = compile_source(_reduce_program(values, op, fanout),
                              fork_mode=True)
        assert_identical(prog, n_cores=n_cores, stack_shortcut=shortcut)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=_values,
           mul=st.integers(min_value=-3, max_value=3),
           n_cores=st.sampled_from([2, 6]))
    def test_random_store_streams(self, values, mul, n_cores):
        src = """
        long A[%d] = {%s};
        long B[%d];
        long f(long* dst, long* src, long k) {
            if (k == 1) { dst[0] = src[0] * %d + k; return 0; }
            f(dst, src, k / 2);
            f(dst + k / 2, src + k / 2, k - k / 2);
            return 0;
        }
        long main() {
            f(B, A, %d);
            long i;
            long s = 0;
            for (i = 0; i < %d; i = i + 1) s = s + B[i];
            out(s);
            return s;
        }
        """ % (len(values), ", ".join(str(v) for v in values), len(values),
               mul, len(values), len(values))
        prog = compile_source(src, fork_mode=True)
        naive, _ = assert_identical(prog, n_cores=n_cores)
        assert naive.signed_outputs == [sum(v * mul + 1 for v in values)]
