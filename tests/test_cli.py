"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main

MINIC = """
long A[8] = {1, 2, 3, 4, 5, 6, 7, 8};
long sum(long* t, long k) {
    if (k == 1) return t[0];
    return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
}
long main() { out(sum(A, 8)); return 0; }
"""

ASM = """
main:
    movq $6, %rax
    imulq $7, %rax
    out %rax
    hlt
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(MINIC)
    return str(path)


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(ASM)
    return str(path)


class TestCLI:
    def test_run_minic(self, minic_file, capsys):
        assert main(["run", minic_file]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "36"

    def test_run_asm(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        assert capsys.readouterr().out.splitlines()[0] == "42"

    def test_runfork(self, minic_file, capsys):
        assert main(["runfork", minic_file, "--tree"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "36"
        assert "sections" in out and "section 1" in out

    def test_simulate(self, minic_file, capsys):
        assert main(["simulate", minic_file, "--cores", "4",
                     "--shortcut"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "36"
        assert "cycles" in out

    def test_simulate_scheduler_modes_agree(self, minic_file, capsys):
        outputs = []
        for scheduler in ("naive", "event"):
            assert main(["simulate", minic_file, "--cores", "4",
                         "--scheduler", scheduler]) == 0
            outputs.append(capsys.readouterr().out)
        # cycle counts and outputs printed by the two modes are identical
        assert outputs[0] == outputs[1]

    def test_stats_text(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "scheduler: event" in out
        assert "occupancy:" in out and "parked=" in out
        assert "request latency:" in out
        assert "noc:" in out

    def test_stats_json(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4", "--json",
                     "--trace"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"] == "event"
        assert payload["cycles"] > 0
        assert len(payload["core_occupancy"]) == 4
        assert len(payload["trace"]) == 4
        assert all(len(row) == payload["cycles"]
                   for row in payload["trace"])
        assert payload["outputs"] == [36]

    def test_stats_json_naive_matches_event(self, minic_file, capsys):
        payloads = {}
        for scheduler in ("naive", "event"):
            assert main(["stats", minic_file, "--cores", "4", "--json",
                         "--scheduler", scheduler]) == 0
            payloads[scheduler] = json.loads(capsys.readouterr().out)
        for payload in payloads.values():
            del payload["scheduler"]
        assert payloads["naive"] == payloads["event"]

    def test_stats_events_text(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4", "--events"]) == 0
        out = capsys.readouterr().out
        assert "stall causes:" in out
        assert "wait_memory=" in out and "idle=" in out
        assert "p99=" in out

    def test_stats_events_json(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4", "--events",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stall_causes"]["causes"][0] == "wait_register"
        assert sum(payload["stall_causes"]["totals"].values()) > 0
        assert payload["events"], "raw events ride along under --events"
        assert {"cycle", "kind"} <= set(payload["events"][0])

    def test_trace_command(self, minic_file, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", minic_file, "--cores", "4",
                     "-o", str(out_path)]) == 0
        assert "perfetto" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert any(e.get("ph") == "X" and e.get("cat") == "section"
                   for e in events)
        assert any(e.get("ph") == "s" for e in events), "flow arrows"
        assert doc["otherData"]["cycles"] > 0

    def test_simulate_chrome_trace_flag(self, minic_file, tmp_path, capsys):
        out_path = tmp_path / "sim.json"
        assert main(["simulate", minic_file, "--cores", "4",
                     "--chrome-trace", str(out_path)]) == 0
        assert out_path.exists()
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_analyze_command(self, minic_file, capsys):
        assert main(["analyze", minic_file, "--cores", "4",
                     "--per-core"]) == 0
        out = capsys.readouterr().out
        assert "stall causes" in out
        assert "critical path" in out
        assert "core  0:" in out
        assert "chain:" in out

    def test_analyze_schedulers_agree(self, minic_file, capsys):
        reports = []
        for scheduler in ("naive", "event"):
            assert main(["analyze", minic_file, "--cores", "4",
                         "--scheduler", scheduler]) == 0
            reports.append(capsys.readouterr().out)
        assert reports[0] == reports[1]

    def test_simulate_timing_table(self, asm_file, capsys):
        assert main(["simulate", asm_file, "--cores", "1", "--timing"]) == 0
        assert "core 1 pipeline" in capsys.readouterr().out

    def test_compile(self, minic_file, capsys):
        assert main(["compile", minic_file]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out and "call sum" in out

    def test_compile_fork(self, minic_file, capsys):
        assert main(["compile", minic_file, "--fork"]) == 0
        assert "fork sum" in capsys.readouterr().out

    def test_transform(self, minic_file, capsys):
        assert main(["transform", minic_file]) == 0
        out = capsys.readouterr().out
        assert "fork sum" in out and "endfork" in out

    def test_ilp(self, minic_file, capsys):
        assert main(["ilp", minic_file]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "parallel" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 10
        assert "minSpanningTree/parallelKruskal" in out

    def test_faults_flag(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4", "--shortcut",
                     "--faults", "seed=7,drop=0.2,die=1@50", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fault_stats"]["deaths"] == 1
        assert payload["fault_stats"]["retries"] > 0

    def test_faults_flag_text_line(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4",
                     "--faults", "seed=7,drop=0.2"]) == 0
        assert "faults: " in capsys.readouterr().out

    def test_faults_identical_architectural_results(self, minic_file,
                                                    capsys):
        outputs = {}
        for spec in (None, "seed=3,drop=0.15,die=2@40"):
            argv = ["simulate", minic_file, "--cores", "4", "--shortcut"]
            if spec:
                argv += ["--faults", spec]
            assert main(argv) == 0
            out = capsys.readouterr().out
            outputs[spec] = [line for line in out.splitlines()
                             if not line.startswith("#")]
        assert outputs[None] == outputs["seed=3,drop=0.15,die=2@40"]

    def test_bad_faults_spec(self, minic_file, capsys):
        assert main(["simulate", minic_file, "--faults", "warp=9"]) == 1
        assert "unknown --faults key" in capsys.readouterr().err
        assert main(["simulate", minic_file, "--faults", "die=9@10",
                     "--cores", "4"]) == 1
        assert "outside" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.c"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_source(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("long main() { return undeclared; }")
        assert main(["run", str(path)]) == 1
        assert "undeclared" in capsys.readouterr().err


class TestLintCLI:
    def test_clean_program(self, minic_file, capsys):
        assert main(["lint", minic_file]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_failing_finding(self, tmp_path, capsys):
        path = tmp_path / "hazard.s"
        path.write_text("main:\nfork f\nhlt\nf:\nret\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "[fork-ret-mix]" in out
        assert "%s:2:" % path in out       # findings carry file:line

    def test_no_info_hides_notes(self, tmp_path, capsys):
        path = tmp_path / "ser.s"
        path.write_text(
            "main:\nfork f\npushq %rax\npopq %rax\nhlt\nf:\nendfork\n")
        assert main(["lint", str(path)]) == 0
        assert "stack-serialization" in capsys.readouterr().out
        assert main(["lint", "--no-info", str(path)]) == 0
        assert "stack-serialization" not in capsys.readouterr().out

    def test_validate_flag(self, minic_file, capsys):
        assert main(["lint", "--validate", minic_file]) == 0
        out = capsys.readouterr().out
        assert "machine: sound" in out and "sim: sound" in out
        assert "sim[vector]: sound" in out

    def test_json_payload(self, minic_file, capsys):
        assert main(["lint", "--json", minic_file]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["failed"] is False
        (target,) = payload["targets"]
        assert target["name"] == minic_file
        assert target["counts"]["error"] == 0
        assert isinstance(target["findings"], list)

    def test_json_validate_payload(self, minic_file, capsys):
        assert main(["lint", "--json", "--validate", minic_file]) == 0
        payload = json.loads(capsys.readouterr().out)
        (target,) = payload["targets"]
        sources = [v["source"] for v in target["validations"]]
        assert sources == ["machine", "sim", "sim[vector]"]
        assert all(v["sound"] for v in target["validations"])

    def test_diagnostics_carry_position(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text("main:\nhlt\n.data\ncell: .zero 7x\n")
        assert main(["lint", str(path)]) == 1
        err = capsys.readouterr().err
        assert "%s:4" % path in err
        assert "bad .zero size" in err

    def test_minic_diagnostics_carry_position(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("int main() { return 0; }")
        assert main(["lint", str(path)]) == 1
        err = capsys.readouterr().err
        assert "%s:1:1:" % path in err

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert capsys.readouterr().err

    def test_runfork_sanitize(self, minic_file, capsys):
        assert main(["runfork", minic_file, "--sanitize"]) == 0
        assert capsys.readouterr().out.splitlines()[0] == "36"


class TestDepsCLI:
    def test_text_report(self, minic_file, capsys):
        assert main(["deps", minic_file]) == 0
        out = capsys.readouterr().out
        assert "section deps:" in out
        assert "speedup bound:" in out
        assert "bound=" in out

    def test_measure_prints_soundness(self, minic_file, capsys):
        assert main(["deps", minic_file, "--measure", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "measured=" in out and "sound" in out
        assert "VIOLATED" not in out

    def test_validate_all_kernels(self, minic_file, capsys):
        assert main(["deps", minic_file, "--validate"]) == 0
        out = capsys.readouterr().out
        for kernel in ("event", "naive", "vector"):
            assert "deps[%s]: sound" % kernel in out

    def test_dot_output(self, minic_file, capsys):
        assert main(["deps", minic_file, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph section_deps")

    def test_json_payload(self, minic_file, capsys):
        assert main(["deps", minic_file, "--json", "--validate",
                     "--cores", "16", "64"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        (target,) = payload["targets"]
        assert target["name"] == minic_file
        assert set(target["bound"]["speedup"]) == {"16", "64"}
        assert [v["kernel"] for v in target["validations"]] == [
            "event", "naive", "vector"]
        assert all(v["sound"] for v in target["validations"])

    def test_simulate_optimize_flag(self, minic_file, capsys):
        assert main(["simulate", minic_file, "--cores", "4"]) == 0
        base = capsys.readouterr().out
        assert main(["simulate", minic_file, "--cores", "4",
                     "--optimize"]) == 0
        opt = capsys.readouterr().out
        # same program output, strictly fewer committed cycles
        assert base.splitlines()[0] == opt.splitlines()[0] == "36"
        base_cycles = int(base.rsplit(" in ", 1)[1].split()[0])
        opt_cycles = int(opt.rsplit(" in ", 1)[1].split()[0])
        assert opt_cycles <= base_cycles

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["deps"]) == 2
        assert capsys.readouterr().err


class TestChaosCLI:
    def test_chaos_default_subset(self, capsys):
        assert main(["chaos", "--cores", "8", "--drops", "0.1",
                     "--deaths", "1", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("benchmark")
        # header + 3 default shorts + the batch-engine summary line
        assert len(lines) == 5
        assert all(line.endswith("yes") for line in lines[1:4])
        assert lines[4].startswith("# engine: executed=6 cache_hits=0")

    def test_chaos_json(self, capsys):
        assert main(["chaos", "--cores", "8", "--drops", "0.0",
                     "--deaths", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_cores"] == 8
        assert all(rec["identical"] for rec in payload["records"])
        assert all(rec["slowdown"] == 1.0 for rec in payload["records"])


class TestMetricsCLI:
    def test_metrics_json(self, minic_file, capsys):
        assert main(["metrics", minic_file, "--cores", "4",
                     "--window", "50"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["domain"] == "cycle"
        assert payload["window"] == 50
        assert payload["windows"] == -(-payload["cycles"] // 50)
        assert sum(payload["series"]["retired"]) == \
            payload["totals"]["retired"]
        assert payload["totals"]["noc_messages"] > 0

    def test_metrics_flag_overrides_window(self, minic_file, capsys):
        assert main(["metrics", minic_file, "--cores", "4",
                     "--window", "50", "--metrics", "25"]) == 0
        assert json.loads(capsys.readouterr().out)["window"] == 25

    def test_metrics_prometheus(self, minic_file, capsys):
        assert main(["metrics", minic_file, "--cores", "4",
                     "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sim_retired_total counter" in out
        assert 'repro_sim_cycles{domain="cycle"}' in out

    def test_metrics_kernels_agree(self, minic_file, capsys):
        payloads = {}
        for kernel in ("naive", "event", "vector"):
            assert main(["metrics", minic_file, "--cores", "4",
                         "--kernel", kernel, "--window", "40"]) == 0
            payloads[kernel] = json.loads(capsys.readouterr().out)
        assert payloads["naive"] == payloads["event"] == \
            payloads["vector"]

    def test_stats_json_carries_schema_version(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert "metrics" not in payload, \
            "metrics only ride along when --metrics sets a window"

    def test_stats_json_metrics_ride_along(self, minic_file, capsys):
        assert main(["stats", minic_file, "--cores", "4", "--json",
                     "--metrics", "60"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["window"] == 60
        # the embedded dict keeps its own (metrics) schema version
        assert payload["metrics"]["schema_version"] == 1

    def test_simulate_and_stats_print_summary_line(self, minic_file,
                                                   capsys):
        assert main(["simulate", minic_file, "--cores", "4",
                     "--metrics", "60"]) == 0
        assert "# metrics:" in capsys.readouterr().out
        assert main(["stats", minic_file, "--cores", "4",
                     "--metrics", "60"]) == 0
        assert "metrics: " in capsys.readouterr().out

    def test_metrics_chrome_trace_counter_tracks(self, minic_file,
                                                 tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["metrics", minic_file, "--cores", "4",
                     "--window", "40",
                     "--chrome-trace", str(out_path)]) == 0
        trace = json.loads(out_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "C"}
        assert "retired/window" in names
        assert any(name.startswith("noc ") for name in names)


class TestEntryPoint:
    def test_pyproject_script_resolves(self, capsys):
        # the installed `repro` script must point at a real callable
        import importlib
        import re
        from pathlib import Path

        text = (Path(__file__).resolve().parents[1]
                / "pyproject.toml").read_text()
        match = re.search(
            r'^repro\s*=\s*"([\w.]+):(\w+)"$', text, re.MULTILINE)
        assert match, "[project.scripts] repro entry missing"
        module = importlib.import_module(match.group(1))
        entry = getattr(module, match.group(2))
        assert entry is main
        assert entry(["workloads"]) == 0
        assert capsys.readouterr().out.count("\n") == 10


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert capsys.readouterr().out.strip() == repro.__version__

    def test_version_is_single_sourced(self):
        """``__version__`` comes from package metadata when installed,
        and in any case matches the pyproject pin (the fallback is kept
        in sync with it, so both paths agree)."""
        import re
        from pathlib import Path

        import repro

        text = (Path(__file__).resolve().parents[1]
                / "pyproject.toml").read_text()
        match = re.search(r'^version\s*=\s*"([^"]+)"$', text,
                          re.MULTILINE)
        assert match, "pyproject.toml version missing"
        assert repro.__version__ == match.group(1)

    def test_serve_healthz_reports_same_version(self):
        import repro
        from repro.serve import ServeConfig, SimServer

        health = SimServer(ServeConfig()).healthz()
        assert health["version"] == repro.__version__
        assert health["status"] == "ok"


class TestSnapshotCLI:
    """--checkpoint / --snapshot-dir / --resume-from / trace --seek /
    chaos --warm-start."""

    def _capture(self, asm_file, tmp_path, capsys):
        snap_dir = str(tmp_path / "snaps")
        assert main(["simulate", asm_file, "--checkpoint", "3",
                     "--snapshot-dir", snap_dir]) == 0
        out = capsys.readouterr().out
        (line,) = [l for l in out.splitlines()
                   if l.startswith("# snapshot @cycle 3")]
        return snap_dir, line.split()[-1]

    def test_checkpoint_publishes_content_addressed_key(
            self, asm_file, tmp_path, capsys):
        snap_dir, key = self._capture(asm_file, tmp_path, capsys)
        assert len(key) == 64 and int(key, 16) >= 0
        from repro.runner import ResultCache
        from repro.snapshot import Snapshot
        data = ResultCache(snap_dir).get_blob(key)
        assert Snapshot.from_bytes(data).cycle == 3

    def test_resume_from_key_matches_cold(self, asm_file, tmp_path,
                                          capsys):
        assert main(["simulate", asm_file]) == 0
        cold = capsys.readouterr().out
        snap_dir, key = self._capture(asm_file, tmp_path, capsys)
        assert main(["simulate", asm_file, "--resume-from", key,
                     "--snapshot-dir", snap_dir]) == 0
        warm = capsys.readouterr().out
        assert warm.splitlines()[0] == cold.splitlines()[0] == "42"
        assert [l for l in warm.splitlines() if l.startswith("# 4")] == \
            [l for l in cold.splitlines() if l.startswith("# 4")]

    def test_resume_from_path(self, asm_file, tmp_path, capsys):
        snap_dir, key = self._capture(asm_file, tmp_path, capsys)
        from repro.runner import ResultCache
        blob_path = str(ResultCache(snap_dir).blob_path(key))
        assert main(["simulate", asm_file, "--resume-from",
                     blob_path]) == 0
        assert capsys.readouterr().out.splitlines()[0] == "42"

    def test_resume_key_without_dir_is_an_error(self, asm_file, capsys):
        assert main(["simulate", asm_file,
                     "--resume-from", "a" * 64]) == 1
        assert "--snapshot-dir" in capsys.readouterr().err

    def test_missing_key_is_an_error(self, asm_file, tmp_path, capsys):
        assert main(["simulate", asm_file, "--resume-from", "b" * 64,
                     "--snapshot-dir", str(tmp_path / "empty")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_trace_seek_filters_events(self, asm_file, tmp_path, capsys):
        out_path = str(tmp_path / "trace.json")
        assert main(["trace", asm_file, "-o", out_path,
                     "--seek", "4"]) == 0
        capsys.readouterr()
        with open(out_path) as handle:
            data = json.load(handle)
        assert data["otherData"]["seek"] == 4
        assert all(event["ts"] >= 4
                   for event in data["traceEvents"]
                   if event.get("ph") != "M")

    def test_chaos_warm_start_grid(self, capsys):
        assert main(["chaos", "--warm-start", "0.8", "--cores", "8",
                     "--drops", "0.0", "0.1", "--deaths", "0", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["cells"] == 3 * 2 * 2
        assert summary["all_identical"]
        assert all(rec["identical"] for rec in payload["records"])
