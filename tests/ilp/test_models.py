"""Unit tests for the ILP dependency models and predictors."""

import pytest

from repro.ilp import (
    DependencyModel,
    NoPredictor,
    PARALLEL_MODEL,
    PerfectPredictor,
    SEQUENTIAL_MODEL,
    TwoBitPredictor,
    make_predictor,
    wall_good_model,
    wall_perfect_model,
)


class TestModelDefinitions:
    def test_sequential_model_keeps_memory_false_deps(self):
        # Paper: memory is NOT renamed in the sequential model.
        assert SEQUENTIAL_MODEL.rename_registers
        assert not SEQUENTIAL_MODEL.rename_memory
        assert not SEQUENTIAL_MODEL.ignore_stack_pointer

    def test_parallel_model_renames_everything(self):
        assert PARALLEL_MODEL.rename_registers
        assert PARALLEL_MODEL.rename_memory
        assert PARALLEL_MODEL.ignore_stack_pointer
        assert not PARALLEL_MODEL.control_dependencies

    def test_wall_good_model(self):
        model = wall_good_model()
        assert model.window_size == 2048
        assert model.issue_width == 64
        assert model.branch_predictor == "twobit"
        assert model.control_dependencies

    def test_wall_perfect_model_unlimited(self):
        model = wall_perfect_model()
        assert model.window_size is None
        assert model.issue_width is None

    def test_derive(self):
        model = PARALLEL_MODEL.derive("no-mem", memory_dependencies=False)
        assert model.name == "no-mem"
        assert not model.memory_dependencies
        assert PARALLEL_MODEL.memory_dependencies   # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            DependencyModel("x", branch_predictor="oracle")
        with pytest.raises(ValueError):
            DependencyModel("x", window_size=0)
        with pytest.raises(ValueError):
            DependencyModel("x", issue_width=0)


class TestPredictors:
    def test_factory(self):
        assert isinstance(make_predictor("perfect"), PerfectPredictor)
        assert isinstance(make_predictor("twobit"), TwoBitPredictor)
        assert isinstance(make_predictor("none"), NoPredictor)
        with pytest.raises(ValueError):
            make_predictor("magic")

    def test_perfect_never_misses(self):
        p = PerfectPredictor()
        for taken in (True, False, True):
            assert p.predict_and_update(1, taken)
        assert p.accuracy == 1.0

    def test_none_always_misses(self):
        p = NoPredictor()
        assert not p.predict_and_update(1, True)
        assert p.accuracy == 0.0

    def test_twobit_learns_a_biased_branch(self):
        p = TwoBitPredictor()
        results = [p.predict_and_update(7, True) for _ in range(10)]
        assert results[0] is False           # starts weakly not-taken
        assert all(results[2:])              # saturates to taken

    def test_twobit_loop_pattern(self):
        # T T T N repeating: a 2-bit counter mispredicts the N and the
        # first T after retraining is still right (saturation).
        p = TwoBitPredictor()
        outcomes = [True, True, True, False] * 32
        for taken in outcomes:
            p.predict_and_update(3, taken)
        assert 0.5 < p.accuracy < 0.8

    def test_twobit_tracks_branches_separately(self):
        p = TwoBitPredictor()
        for _ in range(4):
            p.predict_and_update(1, True)
            p.predict_and_update(2, False)
        assert p.predict_and_update(1, True)
        assert p.predict_and_update(2, False)
