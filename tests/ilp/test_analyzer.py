"""Unit + property tests for the dataflow scheduler (hand-computed traces)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import (
    DependencyModel,
    PARALLEL_MODEL,
    SEQUENTIAL_MODEL,
    analyze,
    wall_good_model,
)
from repro.ilp.analyzer import analyze_stream_multi
from repro.isa import Instruction
from repro.machine import SequentialMachine
from repro.machine.trace import TraceEntry
from repro.minic import compile_source
from repro.paper import paper_array, sum_sequential_program

_NOP = Instruction("nop")


def entry(seq, reads=(), writes=(), mreads=(), mwrites=(), taken=None,
          addr=0):
    return TraceEntry(seq=seq, addr=addr, instr=_NOP,
                      reg_reads=tuple(reads), reg_writes=tuple(writes),
                      mem_reads=tuple(mreads), mem_writes=tuple(mwrites),
                      taken=taken, depth=0, section=0, section_index=seq)


FREE = DependencyModel("free", rename_registers=True, rename_memory=True,
                       ignore_stack_pointer=True)


class TestHandTraces:
    def test_independent_instructions_all_at_cycle_1(self):
        trace = [entry(i, writes=["r%d" % i]) for i in range(8)]
        result = analyze(trace, FREE)
        assert result.cycles == 1
        assert result.ilp == 8.0

    def test_pure_chain(self):
        # r1 = ...; r2 = f(r1); r3 = f(r2); ...
        trace = [entry(0, writes=["rax"])]
        trace += [entry(i, reads=["rax"], writes=["rax"]) for i in range(1, 6)]
        result = analyze(trace, FREE)
        assert result.cycles == 6
        assert result.ilp == 1.0

    def test_diamond(self):
        trace = [
            entry(0, writes=["rax"]),
            entry(1, reads=["rax"], writes=["rbx"]),
            entry(2, reads=["rax"], writes=["rcx"]),
            entry(3, reads=["rbx", "rcx"], writes=["rdx"]),
        ]
        result = analyze(trace, FREE)
        assert result.cycles == 3

    def test_memory_raw_dependency(self):
        trace = [
            entry(0, mwrites=[0x100]),
            entry(1, mreads=[0x100]),
        ]
        result = analyze(trace, PARALLEL_MODEL)
        assert result.cycles == 2

    def test_memory_waw_only_in_unrenamed_model(self):
        trace = [
            entry(0, mwrites=[0x100]),
            entry(1, mwrites=[0x100]),
            entry(2, mwrites=[0x100]),
        ]
        assert analyze(trace, PARALLEL_MODEL).cycles == 1
        assert analyze(trace, SEQUENTIAL_MODEL).cycles == 3

    def test_memory_war_in_unrenamed_model(self):
        trace = [
            entry(0, mreads=[0x100]),
            entry(1, mwrites=[0x100]),
        ]
        assert analyze(trace, SEQUENTIAL_MODEL).cycles == 2
        assert analyze(trace, PARALLEL_MODEL).cycles == 1

    def test_register_waw_dropped_when_renamed(self):
        trace = [
            entry(0, writes=["rax"]),
            entry(1, writes=["rax"]),
        ]
        assert analyze(trace, SEQUENTIAL_MODEL).cycles == 1

    def test_register_false_deps_kept_when_not_renamed(self):
        model = FREE.derive("norename", rename_registers=False)
        trace = [
            entry(0, writes=["rax"]),
            entry(1, reads=["rax"]),
            entry(2, writes=["rax"]),   # WAR on entry 1
        ]
        assert analyze(trace, model).cycles == 3
        assert analyze(trace, FREE).cycles == 2

    def test_stack_pointer_chain_ignored_in_parallel_model(self):
        trace = [entry(i, reads=["rsp"], writes=["rsp"]) for i in range(6)]
        assert analyze(trace, PARALLEL_MODEL).cycles == 1
        assert analyze(trace, SEQUENTIAL_MODEL).cycles == 6

    def test_issue_width_limits(self):
        model = FREE.derive("narrow", issue_width=2)
        trace = [entry(i, writes=["r%d" % i]) for i in range(8)]
        result = analyze(trace, model)
        assert result.cycles == 4

    def test_window_limits(self):
        model = FREE.derive("tiny-window", window_size=2)
        trace = [entry(i, writes=["r%d" % i]) for i in range(6)]
        # With a 2-entry window, instruction i waits for i-2's completion.
        result = analyze(trace, model)
        assert result.cycles == 3

    def test_control_serialization_with_no_predictor(self):
        model = FREE.derive("ctl", control_dependencies=True,
                            branch_predictor="none")
        trace = [
            entry(0, taken=True, addr=0),
            entry(1, writes=["rax"]),
            entry(2, taken=False, addr=1),
            entry(3, writes=["rbx"]),
        ]
        result = analyze(trace, model)
        assert result.cycles == 3  # each branch fences the next group
        assert result.branch_mispredictions == 2

    def test_perfect_prediction_no_fence(self):
        model = FREE.derive("ctl-perfect", control_dependencies=True,
                            branch_predictor="perfect")
        trace = [entry(0, taken=True, addr=0), entry(1, writes=["rax"])]
        assert analyze(trace, model).cycles == 1

    def test_empty_trace(self):
        result = analyze([], FREE)
        assert result.instructions == 0
        assert result.ilp == 0.0

    def test_distance_histogram(self):
        trace = [entry(0, writes=["rax"])] + [
            entry(i, reads=["rax"], writes=["rbx"]) for i in range(1, 10)]
        result = analyze(trace, FREE, track_distance=True)
        hist = result.critical_distance_hist
        assert hist is not None
        assert sum(hist) == 9                 # every consumer has a producer
        assert hist[3] == 2                   # distances 8 and 9


class TestOnRealPrograms:
    def test_sum_sequential_vs_parallel(self):
        prog = sum_sequential_program(paper_array(40))
        seq, par = analyze_stream_multi(
            SequentialMachine(prog).step_entries(),
            [SEQUENTIAL_MODEL, PARALLEL_MODEL])
        assert seq.instructions == par.instructions
        assert par.ilp > 3 * seq.ilp

    def test_parallel_ilp_grows_with_sum_size(self):
        ilps = []
        for n in (20, 80, 320):
            prog = sum_sequential_program(paper_array(n))
            ilps.append(analyze(SequentialMachine(prog).step_entries(),
                                PARALLEL_MODEL).ilp)
        assert ilps[0] < ilps[1] < ilps[2]

    def test_sequential_ilp_flat(self):
        ilps = []
        for n in (40, 160, 640):
            prog = sum_sequential_program(paper_array(n))
            ilps.append(analyze(SequentialMachine(prog).step_entries(),
                                SEQUENTIAL_MODEL).ilp)
        assert max(ilps) - min(ilps) < 1.0

    def test_wall_good_below_parallel(self):
        prog = sum_sequential_program(paper_array(80))
        good, par = analyze_stream_multi(
            SequentialMachine(prog).step_entries(),
            [wall_good_model(), PARALLEL_MODEL])
        assert good.ilp < par.ilp

    def test_stream_multi_matches_individual(self):
        prog = compile_source(
            "long main() { long i; long s = 0;"
            " for (i = 0; i < 50; i = i + 1) s = s + i; return s; }")
        multi = analyze_stream_multi(SequentialMachine(prog).step_entries(),
                                     [SEQUENTIAL_MODEL, PARALLEL_MODEL])
        single = [analyze(SequentialMachine(prog).step_entries(), m)
                  for m in (SEQUENTIAL_MODEL, PARALLEL_MODEL)]
        assert [(r.instructions, r.cycles) for r in multi] == [
            (r.instructions, r.cycles) for r in single]


regs = st.sampled_from(["rax", "rbx", "rcx", "rsp"])
synthetic_traces = st.lists(
    st.tuples(st.lists(regs, max_size=2, unique=True),
              st.lists(regs, max_size=2, unique=True),
              st.lists(st.sampled_from([0x100, 0x108, 0x110]), max_size=1),
              st.lists(st.sampled_from([0x100, 0x108, 0x110]), max_size=1)),
    max_size=40)


def build(raw):
    return [entry(i, reads=r, writes=w, mreads=mr, mwrites=mw)
            for i, (r, w, mr, mw) in enumerate(raw)]


class TestProperties:
    @given(synthetic_traces)
    @settings(max_examples=80, deadline=None)
    def test_cycles_bounded_by_trace_length(self, raw):
        trace = build(raw)
        for model in (SEQUENTIAL_MODEL, PARALLEL_MODEL):
            result = analyze(trace, model)
            assert 0 <= result.cycles <= len(trace)
            if trace:
                assert result.ilp >= 1.0

    @given(synthetic_traces)
    @settings(max_examples=80, deadline=None)
    def test_fewer_dependencies_never_slower(self, raw):
        trace = build(raw)
        seq = analyze(trace, SEQUENTIAL_MODEL)
        par = analyze(trace, PARALLEL_MODEL)
        assert par.cycles <= seq.cycles

    @given(synthetic_traces, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_wider_issue_never_slower(self, raw, width):
        trace = build(raw)
        narrow = analyze(trace, FREE.derive("n", issue_width=width))
        wide = analyze(trace, FREE.derive("w", issue_width=width * 2))
        free = analyze(trace, FREE)
        assert free.cycles <= wide.cycles <= narrow.cycles

    @given(synthetic_traces, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_bigger_window_never_slower(self, raw, window):
        trace = build(raw)
        small = analyze(trace, FREE.derive("s", window_size=window))
        big = analyze(trace, FREE.derive("b", window_size=window * 4))
        assert big.cycles <= small.cycles
