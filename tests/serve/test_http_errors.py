"""HTTP error paths: every ``jobs_from_spec`` failure (and every
framing failure) must surface as a structured JSON error with the right
status code and leave **no partial state** behind — no records, no
queue entries, no quota spend.

Plus the hypothesis round trip: any valid generated spec, submitted
over HTTP, fetches back exactly the payload the engine computes.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runner import execute_job, jobs_from_spec

from ._harness import Daemon, asm_spec, slow_asm


def _assert_error(payload, kind):
    assert set(payload) == {"error"}
    assert payload["error"]["kind"] == kind
    assert payload["error"]["message"]


def _assert_no_state(daemon):
    _, _, health = daemon.request("GET", "/healthz")
    assert health["jobs"] == {}
    assert health["queue_depth"] == 0


class TestSpecErrors:
    def test_unknown_job_keys_400(self):
        with Daemon() as daemon:
            status, _, payload = daemon.submit(
                {"jobs": [{"id": "x", "workload": "quicksort",
                           "cores": 4}]})
            assert status == 400
            _assert_error(payload, "invalid_spec")
            assert "unknown job-spec keys" in payload["error"]["message"]
            _assert_no_state(daemon)

    def test_unknown_top_level_keys_400(self):
        with Daemon() as daemon:
            status, _, payload = daemon.submit(
                {"jobs": [], "workers": 4})
            assert status == 400
            _assert_error(payload, "invalid_spec")

    def test_malformed_program_400(self):
        with Daemon() as daemon:
            status, _, payload = daemon.submit(
                {"jobs": [{"id": "x", "asm": "main:\n    bogus %rax\n"}]})
            assert status == 400
            _assert_error(payload, "invalid_spec")
            _assert_no_state(daemon)

    def test_no_program_source_400(self):
        with Daemon() as daemon:
            status, _, payload = daemon.submit({"jobs": [{"id": "x"}]})
            assert status == 400
            _assert_error(payload, "invalid_spec")

    def test_partial_spec_rejects_whole_submit(self):
        """One bad entry poisons the whole spec: the valid sibling job
        must not be admitted (all-or-nothing submission)."""
        with Daemon() as daemon:
            good = asm_spec(slow_asm(300))["jobs"][0]
            status, _, payload = daemon.submit(
                {"jobs": [good, {"id": "bad", "nope": 1}]})
            assert status == 400
            _assert_no_state(daemon)


class TestFramingErrors:
    def test_invalid_json_400(self):
        with Daemon() as daemon:
            status, _, payload = daemon.request(
                "POST", "/jobs", body=b"{not json")
            assert status == 400
            _assert_error(payload, "invalid_json")
            _assert_no_state(daemon)

    def test_oversized_body_413(self):
        with Daemon(max_body_bytes=512) as daemon:
            big = asm_spec("main:\n" + "    incq %rax\n" * 200)
            status, _, payload = daemon.request("POST", "/jobs",
                                                body=big)
            assert status == 413
            _assert_error(payload, "too_large")
            assert "512" in payload["error"]["message"]
            _assert_no_state(daemon)

    def test_unknown_route_404(self):
        with Daemon() as daemon:
            status, _, payload = daemon.request("GET", "/nope")
            assert status == 404
            _assert_error(payload, "not_found")

    def test_unknown_job_404(self):
        with Daemon() as daemon:
            for path in ("/jobs/j-999", "/jobs/j-999/events"):
                status, _, payload = daemon.request("GET", path)
                assert status == 404
                _assert_error(payload, "not_found")

    def test_unknown_result_404(self):
        with Daemon() as daemon:
            status, _, payload = daemon.request("GET",
                                                "/results/" + "0" * 64)
            assert status == 404
            _assert_error(payload, "not_found")

    def test_wrong_method_405(self):
        with Daemon() as daemon:
            status, _, payload = daemon.request("DELETE", "/jobs")
            assert status == 405
            _assert_error(payload, "method_not_allowed")
            status, _, payload = daemon.request("POST", "/healthz")
            assert status == 405

    def test_errors_count_in_request_metrics(self):
        with Daemon() as daemon:
            daemon.submit({"jobs": [{"id": "x", "zzz": 1}]})
            _, _, text = daemon.request("GET", "/metrics")
            assert ('repro_serve_http_requests{domain="host",'
                    'route="jobs_submit",status="400"} 1') in text
            assert ('repro_serve_rejected{domain="host",'
                    'reason="invalid_spec"} 1') in text


#: small but varied program space: work amount, output value, cores
_SPEC = st.fixed_dictionaries({
    "n": st.integers(min_value=1, max_value=400),
    "out": st.integers(min_value=-5, max_value=5),
    "n_cores": st.sampled_from([1, 2, 4]),
})


class TestRoundTrip:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(_SPEC)
    def test_submitted_spec_fetches_engine_payload(self, params):
        """spec → POST /jobs → GET /results/<key> == execute_job."""
        spec = asm_spec(slow_asm(params["n"], out=params["out"]),
                        n_cores=params["n_cores"])
        job = jobs_from_spec(spec)[0]
        want = json.dumps(execute_job(job), sort_keys=True)
        with Daemon() as daemon:
            status, _, payload = daemon.submit(spec)
            assert status in (200, 202)
            record = payload["jobs"][0]
            assert record["key"] == job.key()
            if record["status"] not in ("cached",):
                assert daemon.wait_done(record["job"]) == "done"
            status, _, result = daemon.request(
                "GET", "/results/%s" % record["key"])
            assert status == 200
            assert json.dumps(result["payload"], sort_keys=True) == want
