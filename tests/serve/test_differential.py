"""Daemon-vs-engine differential: a payload served over HTTP must be
**byte-identical** (canonical JSON) to the one ``repro batch`` computes
locally for the same job.

This is the serving layer's core correctness contract: coalescing,
caching tiers and the asyncio worker-pool bridge are allowed to change
*when* a simulation runs, never *what* it produces.  Both sides
normalize through the same worker function, so any divergence here
means the daemon corrupted a payload in flight.
"""

import json

from repro.runner import jobs_from_spec, run_batch

from ._harness import Daemon, workload_spec

#: two Table 1 workloads of different character: divide-and-conquer
#: quicksort and the breadth-first search graph traversal
WORKLOADS = ("quicksort", "bfs")


def _canon(payload):
    return json.dumps(payload, sort_keys=True)


class TestDaemonEngineDifferential:
    def test_served_payloads_byte_identical_to_engine(self):
        specs = {short: workload_spec(short) for short in WORKLOADS}
        # engine side: plain run_batch, no cache
        engine = {}
        for short, spec in specs.items():
            report = run_batch(jobs_from_spec(spec))
            outcome = report.outcomes[0]
            assert outcome.status == "ok"
            engine[short] = _canon(outcome.payload)
        # daemon side: submit over HTTP, fetch by content address
        with Daemon(pool_size=2) as daemon:
            records = {}
            for short, spec in specs.items():
                _, _, payload = daemon.submit(spec)
                records[short] = payload["jobs"][0]
            for short, record in records.items():
                assert daemon.wait_done(record["job"]) == "done"
                status, _, result = daemon.request(
                    "GET", "/results/%s" % record["key"])
                assert status == 200
                assert _canon(result["payload"]) == engine[short], \
                    "daemon-served %s payload diverged from engine" \
                    % short

    def test_cached_fetch_remains_identical(self):
        """The LRU round trip (and the JSON re-serialization it implies)
        must not perturb a payload either."""
        spec = workload_spec("quicksort")
        report = run_batch(jobs_from_spec(spec))
        want = _canon(report.outcomes[0].payload)
        with Daemon() as daemon:
            _, _, payload = daemon.submit(spec)
            record = payload["jobs"][0]
            daemon.wait_done(record["job"])
            for _ in range(2):      # first warm fetch, then LRU re-hit
                _, _, result = daemon.request(
                    "GET", "/results/%s" % record["key"])
                assert _canon(result["payload"]) == want

    def test_content_address_matches_engine(self):
        """The daemon keys its cache with the same content address the
        engine computes — the property that lets ``repro batch`` and the
        daemon share one disk cache."""
        spec = workload_spec("bfs")
        job = jobs_from_spec(spec)[0]
        with Daemon() as daemon:
            _, _, payload = daemon.submit(spec)
            assert payload["jobs"][0]["key"] == job.key()
