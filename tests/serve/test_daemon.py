"""SimServer behaviour: admission, coalescing, tiered cache, quotas,
backpressure, graceful shutdown.

Two layers of tests:

* white-box — a :class:`SimServer` that was never ``start()``-ed has no
  dispatchers, so queued work sits still and admission decisions can be
  asserted without races;
* live — a real daemon on a real socket (``_harness.Daemon``), where
  executions, event streams and counters are observed through HTTP.
"""

import concurrent.futures

import pytest

import repro
from repro.serve import (CACHED, CANCELLED, DONE, QUEUED, ServeConfig,
                         ServeRejected, SimServer)

from ._harness import Daemon, asm_spec, slow_asm

QUICK = slow_asm(300)           # ~30ms of simulation
SLOW = slow_asm(8000)           # ~1s of simulation


def _spec(source=QUICK, job_id="job"):
    return asm_spec(source, job_id=job_id)


def _server(**overrides):
    overrides.setdefault("pool_size", 1)
    return SimServer(ServeConfig(**overrides))


class TestAdmission:
    def test_submit_queues(self):
        server = _server()
        status, payload = server.submit_spec(_spec())
        assert status == 202
        record = payload["jobs"][0]
        assert record["status"] == QUEUED
        assert record["key"] in server._inflight
        assert [e["event"] for e in
                server.record(record["job"]).events] == ["submitted",
                                                         "queued"]

    def test_resubmit_coalesces(self):
        server = _server()
        _, first = server.submit_spec(_spec())
        _, second = server.submit_spec(_spec())
        record = second["jobs"][0]
        assert record["coalesced"] is True
        assert record["key"] == first["jobs"][0]["key"]
        assert server.registry.counter("serve_coalesced").value == 1
        # one queue entry, two records riding it
        assert server._queue.qsize() == 1
        assert len(server._inflight[record["key"]].records) == 2

    def test_duplicate_keys_within_one_spec_coalesce(self):
        spec = {"jobs": [dict(_spec()["jobs"][0], id="a"),
                         dict(_spec()["jobs"][0], id="b")]}
        server = _server()
        _, payload = server.submit_spec(spec)
        records = payload["jobs"]
        assert records[0]["key"] == records[1]["key"]
        assert not records[0]["coalesced"] and records[1]["coalesced"]
        assert server._queue.qsize() == 1

    def test_cached_submit_is_terminal(self):
        server = _server()
        _, first = server.submit_spec(_spec())
        key = first["jobs"][0]["key"]
        server.store.put(key, {"outputs": [7]})
        del server._inflight[key]       # pretend the execution finished
        status, payload = server.submit_spec(_spec())
        record = payload["jobs"][0]
        assert status == 200
        assert record["status"] == CACHED
        assert record["cache_tier"] == "lru"

    def test_invalid_spec_is_structured_and_stateless(self):
        server = _server()
        with pytest.raises(ServeRejected) as exc_info:
            server.submit_spec({"jobs": [{"id": "x", "bogus": 1}]})
        assert exc_info.value.status == 400
        assert exc_info.value.kind == "invalid_spec"
        assert server.records == {}
        assert server._queue.qsize() == 0

    def test_file_entries_rejected_by_default(self):
        server = _server()
        with pytest.raises(ServeRejected) as exc_info:
            server.submit_spec({"jobs": [{"id": "x",
                                          "file": "/etc/passwd"}]})
        assert exc_info.value.status == 400
        assert "disabled" in str(exc_info.value)
        assert server.records == {}

    def test_draining_rejects(self):
        server = _server()
        server.draining = True
        with pytest.raises(ServeRejected) as exc_info:
            server.submit_spec(_spec())
        assert exc_info.value.status == 503
        assert exc_info.value.kind == "draining"


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self):
        server = _server(queue_limit=2)
        server.submit_spec(_spec(slow_asm(300, out=1), "a"))
        server.submit_spec(_spec(slow_asm(300, out=2), "b"))
        with pytest.raises(ServeRejected) as exc_info:
            server.submit_spec(_spec(slow_asm(300, out=3), "c"))
        assert exc_info.value.status == 429
        assert exc_info.value.kind == "backpressure"
        assert exc_info.value.retry_after_s > 0
        assert len(server.records) == 2     # the reject left no record

    def test_rejection_refunds_quota(self):
        server = _server(queue_limit=1, quota_rate=0.0, quota_burst=3.0)
        server.submit_spec(_spec(slow_asm(300, out=1), "a"))
        with pytest.raises(ServeRejected):
            server.submit_spec(_spec(slow_asm(300, out=2), "b"))
        # the backpressure rejection refunded its token: 3 - 1 = 2 left
        assert server.quotas.bucket("default").tokens == 2.0

    def test_coalesced_submits_bypass_queue_limit_pressure(self):
        # resubmitting an in-flight key adds no queue entry, so it is
        # admitted even when the queue is at its limit
        server = _server(queue_limit=1)
        server.submit_spec(_spec())
        _, payload = server.submit_spec(_spec())
        assert payload["jobs"][0]["coalesced"] is True


class TestQuota:
    def test_quota_exhaustion_rejects(self):
        server = _server(quota_rate=0.5, quota_burst=2.0)
        server.submit_spec(_spec(slow_asm(300, out=1), "a"))
        server.submit_spec(_spec(slow_asm(300, out=2), "b"))
        with pytest.raises(ServeRejected) as exc_info:
            server.submit_spec(_spec(slow_asm(300, out=3), "c"))
        assert exc_info.value.status == 429
        assert exc_info.value.kind == "quota"
        # ~2s: one token at 0.5/s (real clock, so allow refill drift)
        assert exc_info.value.retry_after_s == pytest.approx(2.0,
                                                             abs=0.1)

    def test_tenants_have_separate_buckets(self):
        server = _server(quota_rate=0.0, quota_burst=1.0)
        server.submit_spec(_spec(slow_asm(300, out=1), "a"),
                           tenant="alice")
        with pytest.raises(ServeRejected):
            server.submit_spec(_spec(slow_asm(300, out=2), "b"),
                               tenant="alice")
        # bob is unaffected by alice's exhaustion
        _, payload = server.submit_spec(_spec(slow_asm(300, out=3), "c"),
                                        tenant="bob")
        assert payload["jobs"][0]["status"] == QUEUED


class TestLiveDaemon:
    def test_submit_execute_stream_fetch(self):
        with Daemon() as daemon:
            status, _, payload = daemon.submit(_spec())
            assert status == 202
            record = payload["jobs"][0]
            events = daemon.events(record["job"])
            assert [e["event"] for e in events] == \
                ["submitted", "queued", "running", "done"]
            status, _, result = daemon.request(
                "GET", "/results/%s" % record["key"])
            assert status == 200
            assert result["payload"]["outputs"] == [7]

    def test_coalesced_burst_runs_once(self):
        """The acceptance-criterion burst: N identical concurrent
        submits perform exactly one simulation; the coalesced counter
        reads N-1."""
        n = 6
        with Daemon(pool_size=1) as daemon:
            # occupy the single worker so the burst's key stays in
            # flight for the whole submission window
            daemon.submit(asm_spec(SLOW, job_id="blocker"))
            with concurrent.futures.ThreadPoolExecutor(n) as pool:
                results = list(pool.map(
                    lambda _: daemon.submit(asm_spec(slow_asm(400))),
                    range(n)))
            records = [payload["jobs"][0] for _, _, payload in results]
            assert len({r["key"] for r in records}) == 1
            assert sum(r["coalesced"] for r in records) == n - 1
            for record in records:
                assert daemon.wait_done(record["job"]) == DONE
            # one execution for the burst key (plus the blocker)
            assert daemon.counter("serve_executions") == 2
            assert daemon.counter("serve_coalesced") == n - 1

    def test_lru_warm_fetch_skips_worker_pool(self):
        with Daemon() as daemon:
            _, _, payload = daemon.submit(_spec())
            record = payload["jobs"][0]
            assert daemon.wait_done(record["job"]) == DONE
            executions = daemon.counter("serve_executions")
            for _ in range(3):
                status, _, payload = daemon.submit(_spec())
                assert status == 200
                assert payload["jobs"][0]["status"] == CACHED
                assert payload["jobs"][0]["cache_tier"] == "lru"
            assert daemon.counter("serve_executions") == executions
            assert daemon.counter("serve_cache_requests",
                                  tier="lru") == 3

    def test_disk_tier_survives_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with Daemon(cache_dir=cache_dir) as daemon:
            _, _, payload = daemon.submit(_spec())
            record = payload["jobs"][0]
            assert daemon.wait_done(record["job"]) == DONE
        # a fresh daemon has a cold LRU but shares the disk tier
        with Daemon(cache_dir=cache_dir) as daemon:
            status, _, payload = daemon.submit(_spec())
            assert status == 200
            assert payload["jobs"][0]["status"] == CACHED
            assert payload["jobs"][0]["cache_tier"] == "disk"
            assert daemon.counter("serve_executions") == 0
            # promoted: the next hit is served from the LRU
            _, _, payload = daemon.submit(_spec())
            assert payload["jobs"][0]["cache_tier"] == "lru"

    def test_backpressure_over_http(self):
        with Daemon(pool_size=1, queue_limit=1) as daemon:
            daemon.submit(asm_spec(SLOW, job_id="blocker"))
            # the blocker is running; fill the one queue slot, then
            # overflow it
            seen_429 = None
            for i in range(4):
                status, headers, payload = daemon.submit(
                    asm_spec(slow_asm(300, out=10 + i), job_id="q%d" % i))
                if status == 429:
                    seen_429 = (headers, payload)
                    break
            assert seen_429 is not None
            headers, payload = seen_429
            assert payload["error"]["kind"] == "backpressure"
            assert "Retry-After" in headers
            assert payload["error"]["retry_after_s"] > 0

    def test_quota_over_http(self):
        with Daemon(quota_rate=0.25, quota_burst=1.0) as daemon:
            daemon.submit(_spec(slow_asm(300, out=1), "a"))
            status, headers, payload = daemon.submit(
                _spec(slow_asm(300, out=2), "b"))
            assert status == 429
            assert payload["error"]["kind"] == "quota"
            assert int(headers["Retry-After"]) >= 1

    def test_graceful_shutdown_drains(self):
        daemon = Daemon(pool_size=1).start()
        try:
            _, _, running = daemon.submit(asm_spec(SLOW, job_id="run"))
            _, _, queued = daemon.submit(
                asm_spec(slow_asm(9000, out=2), job_id="wait"))
        finally:
            daemon.stop()
        server = daemon.server
        # the running job was allowed to finish; the queued one was
        # failed cleanly, not left dangling
        assert server.record(running["jobs"][0]["job"]).status == DONE
        assert server.record(queued["jobs"][0]["job"]).status == \
            CANCELLED
        assert server.pool.closed

    def test_healthz_reports_version_and_counts(self):
        with Daemon() as daemon:
            _, _, payload = daemon.submit(_spec())
            daemon.wait_done(payload["jobs"][0]["job"])
            status, _, health = daemon.request("GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["version"] == repro.__version__
            assert health["jobs"] == {"done": 1}
            assert health["cache"]["lru_entries"] == 1

    def test_metrics_exposition(self):
        with Daemon() as daemon:
            _, _, payload = daemon.submit(_spec())
            daemon.wait_done(payload["jobs"][0]["job"])
            status, headers, text = daemon.request("GET", "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert 'repro_serve_executions{domain="host"} 1' in text
            assert "repro_serve_job_wall_seconds_bucket" in text
            assert "repro_serve_cache_healed" in text
            assert "repro_serve_queue_depth" in text

    def test_sse_stream(self):
        with Daemon() as daemon:
            _, _, payload = daemon.submit(_spec())
            events = daemon.events(payload["jobs"][0]["job"], sse=True)
            assert events[-1]["event"] == "done"
            assert [e["seq"] for e in events] == list(range(len(events)))
