"""Token-bucket quotas: refill math, retry hints, refunds, isolation."""

import math

import pytest

from repro.serve import QuotaManager, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        for _ in range(3):
            granted, wait = bucket.try_acquire()
            assert granted and wait == 0.0
        granted, wait = bucket.try_acquire()
        assert not granted
        assert wait == pytest.approx(1.0)

    def test_denial_spends_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(cost=2.0)[0]
        before = bucket.tokens
        assert not bucket.try_acquire(cost=1.0)[0]
        assert bucket.tokens == before

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.try_acquire(cost=5.0)
        clock.advance(100.0)
        assert bucket.tokens == 5.0

    def test_retry_after_is_honest(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        bucket.try_acquire(cost=4.0)
        granted, wait = bucket.try_acquire(cost=3.0)
        assert not granted
        # waiting exactly the hint must make the next acquire succeed
        clock.advance(wait)
        assert bucket.try_acquire(cost=3.0)[0]

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=2.0, clock=clock)
        bucket.try_acquire(cost=2.0)
        granted, wait = bucket.try_acquire()
        assert not granted and wait == math.inf
        clock.advance(1e9)
        assert not bucket.try_acquire()[0]

    def test_cost_above_burst_unservable(self):
        bucket = TokenBucket(rate=5.0, burst=2.0, clock=FakeClock())
        granted, wait = bucket.try_acquire(cost=3.0)
        assert not granted and wait == math.inf

    def test_refund(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=4.0, clock=clock)
        bucket.try_acquire(cost=4.0)
        bucket.refund(3.0)
        assert bucket.tokens == 3.0
        bucket.refund(100.0)          # refunds cap at burst too
        assert bucket.tokens == 4.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)


class TestQuotaManager:
    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = QuotaManager(rate=0.0, burst=1.0, clock=clock)
        assert quotas.try_acquire("alice")[0]
        assert not quotas.try_acquire("alice")[0]
        assert quotas.try_acquire("bob")[0]   # bob's bucket is fresh

    def test_buckets_materialize_lazily(self):
        quotas = QuotaManager(rate=1.0, burst=1.0, clock=FakeClock())
        assert quotas.tenants() == []
        quotas.try_acquire("zed")
        quotas.try_acquire("abe")
        assert quotas.tenants() == ["abe", "zed"]

    def test_refund_reaches_the_right_bucket(self):
        clock = FakeClock()
        quotas = QuotaManager(rate=0.0, burst=2.0, clock=clock)
        quotas.try_acquire("alice", cost=2.0)
        quotas.refund("alice", 2.0)
        assert quotas.try_acquire("alice", cost=2.0)[0]
