"""TieredResultStore blob tier: byte-budgeted LRU over the disk blobs."""

from repro.runner import ResultCache
from repro.serve import (ByteBudgetLRU, DISK_TIER, LRU_TIER, ShardedLRU,
                         TieredResultStore)


def _store(tmp_path, budget=1 << 20):
    return TieredResultStore(ShardedLRU(8), ResultCache(tmp_path),
                             blob_lru=ByteBudgetLRU(budget))


class TestBlobTiering:
    def test_put_then_hot_hit(self, tmp_path):
        store = _store(tmp_path)
        key = store.put_blob(b"snapshot")
        blob, tier = store.get_blob(key)
        assert blob == b"snapshot" and tier == LRU_TIER

    def test_disk_hit_promotes(self, tmp_path):
        store = _store(tmp_path)
        key = store.put_blob(b"snapshot")
        store.blob_lru.clear()
        blob, tier = store.get_blob(key)
        assert blob == b"snapshot" and tier == DISK_TIER
        blob, tier = store.get_blob(key)
        assert tier == LRU_TIER, "a disk hit must promote into the LRU"

    def test_survives_restart_via_disk(self, tmp_path):
        key = _store(tmp_path).put_blob(b"persistent")
        blob, tier = _store(tmp_path).get_blob(key)
        assert blob == b"persistent" and tier == DISK_TIER

    def test_miss(self, tmp_path):
        assert _store(tmp_path).get_blob("0" * 64) == (None, None)

    def test_no_hot_tier_serves_from_disk(self, tmp_path):
        store = TieredResultStore(ShardedLRU(8), ResultCache(tmp_path))
        key = store.put_blob(b"cold only")
        assert store.get_blob(key) == (b"cold only", DISK_TIER)

    def test_oversize_blob_served_from_disk(self, tmp_path):
        store = _store(tmp_path, budget=64)
        key = store.put_blob(b"b" * 4096)
        blob, tier = store.get_blob(key)
        assert blob == b"b" * 4096 and tier == DISK_TIER
        assert store.blob_lru.stats["oversize"] >= 1

    def test_stats_fold_both_blob_tiers(self, tmp_path):
        store = _store(tmp_path)
        key = store.put_blob(b"counted")
        store.get_blob(key)
        store.blob_lru.clear()
        store.get_blob(key)
        stats = store.stats()
        assert stats["blob_lru_hits"] == 1
        assert stats["blob_disk_hits"] == 1
        assert stats["blob_bytes"] == len(b"counted")

    def test_blobs_never_pollute_payload_lru(self, tmp_path):
        store = _store(tmp_path)
        store.put("ab" * 32, {"cycles": 1})
        store.put_blob(b"big blob " * 1000)
        assert store.get("ab" * 32)[1] == LRU_TIER
        assert len(store.lru) == 1
