"""Test harness: a real serve daemon on a real socket, driven from
synchronous test code.

The daemon runs in a background thread with its own event loop (there
is no pytest-asyncio in the toolchain, and running it for real — bytes
over a socket — is exactly what the serve tests should exercise).
Requests go through ``http.client`` so header/framing behaviour is the
stdlib's, not ours.
"""

import asyncio
import http.client
import json
import threading

from repro.serve import HttpFrontend, ServeConfig, SimServer


class Daemon:
    """A live ``repro serve`` instance bound to an ephemeral port."""

    def __init__(self, **config):
        config.setdefault("port", 0)
        config.setdefault("pool_size", 1)
        self.config = ServeConfig(**config)
        self.server = None          # the SimServer, for white-box asserts
        self.host = None
        self.port = None
        self._loop = None
        self._thread = None
        self._stopped = None

    # -- lifecycle -------------------------------------------------------

    def start(self):
        ready = threading.Event()

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self.server = SimServer(self.config)
            frontend = HttpFrontend(self.server)
            self._stopped = threading.Event()

            async def run():
                self.host, self.port = await frontend.start()
                ready.set()
                stop = asyncio.Event()
                self._stop_event = stop
                await stop.wait()
                await frontend.stop()

            try:
                loop.run_until_complete(run())
            finally:
                loop.close()
                self._stopped.set()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("daemon failed to start")
        return self

    def stop(self, timeout=60):
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        if not self._stopped.wait(timeout=timeout):
            raise RuntimeError("daemon failed to stop")
        self._thread.join(timeout=timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    # -- client ----------------------------------------------------------

    def request(self, method, path, body=None, headers=None, timeout=60):
        """One HTTP request; returns ``(status, headers, parsed_body)``.

        JSON bodies parse to objects; anything else comes back as text.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            payload = None
            sent_headers = dict(headers or {})
            if body is not None:
                payload = (json.dumps(body).encode()
                           if not isinstance(body, bytes) else body)
            conn.request(method, path, body=payload,
                         headers=sent_headers)
            resp = conn.getresponse()
            raw = resp.read()
            content_type = resp.headers.get("Content-Type", "")
            if content_type.startswith("application/json"):
                parsed = json.loads(raw)
            else:
                parsed = raw.decode()
            return resp.status, dict(resp.headers), parsed
        finally:
            conn.close()

    def submit(self, spec, tenant=None):
        headers = {"X-Repro-Tenant": tenant} if tenant else None
        return self.request("POST", "/jobs", body=spec, headers=headers)

    def events(self, record_id, sse=False):
        """Block until the record is terminal; return its event list."""
        headers = {"Accept": "text/event-stream"} if sse else None
        status, _, text = self.request(
            "GET", "/jobs/%s/events" % record_id, headers=headers)
        assert status == 200, text
        if sse:
            lines = [line[len("data: "):]
                     for line in text.split("\n")
                     if line.startswith("data: ")]
        else:
            lines = [line for line in text.splitlines() if line]
        return [json.loads(line) for line in lines]

    def wait_done(self, record_id):
        """Follow the record's event stream to a terminal state and
        return the final status string."""
        return self.events(record_id)[-1]["status"]

    def counter(self, name, **labels):
        """Read one host-domain counter from the live registry."""
        reg = self.server.registry
        return reg.counter(name, **{k: str(v)
                                    for k, v in labels.items()}).value


#: a tiny assembly program; ``n`` scales simulated work linearly so
#: tests can pick their own duration
def slow_asm(n, out=7):
    return """
main:
    movq $%d, %%rcx
loop:
    decq %%rcx
    jnz loop
    movq $%d, %%rax
    out %%rax
    hlt
""" % (n, out)


def asm_spec(source, job_id="job", n_cores=2, max_cycles=2_000_000):
    """A one-job batch spec around inline assembly *source*."""
    return {"jobs": [{"id": job_id, "asm": source,
                      "config": {"n_cores": n_cores,
                                 "max_cycles": max_cycles}}]}


def workload_spec(short, job_id=None, n_cores=8):
    return {"jobs": [{"id": job_id or short, "workload": short,
                      "config": {"n_cores": n_cores}}]}
