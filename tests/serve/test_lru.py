"""ShardedLRU: recency semantics, sharded eviction, stable placement."""

import zlib

import pytest

from repro.serve import ShardedLRU


class TestBasics:
    def test_miss_then_hit(self):
        lru = ShardedLRU(4)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.stats == {"hits": 1, "misses": 1, "evictions": 0}

    def test_contains_and_len(self):
        lru = ShardedLRU(8)
        lru.put("a", 1)
        lru.put("b", 2)
        assert "a" in lru and "b" in lru and "c" not in lru
        assert len(lru) == 2

    def test_put_refreshes_value(self):
        lru = ShardedLRU(4)
        lru.put("a", 1)
        lru.put("a", 2)
        assert lru.get("a") == 2
        assert len(lru) == 1

    def test_clear(self):
        lru = ShardedLRU(4)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0
        assert lru.get("a") is None


class TestEviction:
    def test_single_shard_evicts_lru_order(self):
        lru = ShardedLRU(2, shards=1)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")            # refresh: b is now least-recent
        lru.put("c", 3)
        assert "a" in lru and "c" in lru
        assert "b" not in lru
        assert lru.stats["evictions"] == 1

    def test_eviction_is_per_shard(self):
        lru = ShardedLRU(4, shards=4)   # one entry per shard
        # force two keys into the same shard
        shard = lambda k: zlib.crc32(k.encode()) % 4
        keys = ["k%d" % i for i in range(64)]
        a = keys[0]
        b = next(k for k in keys[1:] if shard(k) == shard(a))
        other = next(k for k in keys[1:] if shard(k) != shard(a))
        lru.put(a, 1)
        lru.put(other, 2)
        lru.put(b, 3)           # evicts a (same shard), not other
        assert a not in lru
        assert other in lru and b in lru

    def test_capacity_zero_disables(self):
        lru = ShardedLRU(0)
        lru.put("a", 1)
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_total_capacity_respected(self):
        lru = ShardedLRU(16, shards=4)
        for i in range(200):
            lru.put("key-%d" % i, i)
        assert len(lru) <= 16
        assert all(size <= lru.shard_capacity
                   for size in lru.shard_sizes())


class TestSharding:
    def test_placement_is_stable(self):
        one, two = ShardedLRU(64, shards=8), ShardedLRU(64, shards=8)
        for i in range(32):
            one.put("key-%d" % i, i)
            two.put("key-%d" % i, i)
        assert one.shard_sizes() == two.shard_sizes()

    def test_spread_over_shards(self):
        lru = ShardedLRU(1024, shards=8)
        for i in range(512):
            lru.put("%064x" % i, i)   # hex keys like content addresses
        sizes = lru.shard_sizes()
        assert sum(sizes) == 512
        assert all(size > 0 for size in sizes)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ShardedLRU(-1)
        with pytest.raises(ValueError):
            ShardedLRU(4, shards=0)
