"""ShardedLRU / ByteBudgetLRU: recency semantics, sharded eviction,
stable placement, byte accounting."""

import zlib

import pytest

from repro.serve import ByteBudgetLRU, ShardedLRU


class TestBasics:
    def test_miss_then_hit(self):
        lru = ShardedLRU(4)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.stats == {"hits": 1, "misses": 1, "evictions": 0}

    def test_contains_and_len(self):
        lru = ShardedLRU(8)
        lru.put("a", 1)
        lru.put("b", 2)
        assert "a" in lru and "b" in lru and "c" not in lru
        assert len(lru) == 2

    def test_put_refreshes_value(self):
        lru = ShardedLRU(4)
        lru.put("a", 1)
        lru.put("a", 2)
        assert lru.get("a") == 2
        assert len(lru) == 1

    def test_clear(self):
        lru = ShardedLRU(4)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0
        assert lru.get("a") is None


class TestEviction:
    def test_single_shard_evicts_lru_order(self):
        lru = ShardedLRU(2, shards=1)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")            # refresh: b is now least-recent
        lru.put("c", 3)
        assert "a" in lru and "c" in lru
        assert "b" not in lru
        assert lru.stats["evictions"] == 1

    def test_eviction_is_per_shard(self):
        lru = ShardedLRU(4, shards=4)   # one entry per shard
        # force two keys into the same shard
        shard = lambda k: zlib.crc32(k.encode()) % 4
        keys = ["k%d" % i for i in range(64)]
        a = keys[0]
        b = next(k for k in keys[1:] if shard(k) == shard(a))
        other = next(k for k in keys[1:] if shard(k) != shard(a))
        lru.put(a, 1)
        lru.put(other, 2)
        lru.put(b, 3)           # evicts a (same shard), not other
        assert a not in lru
        assert other in lru and b in lru

    def test_capacity_zero_disables(self):
        lru = ShardedLRU(0)
        lru.put("a", 1)
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_total_capacity_respected(self):
        lru = ShardedLRU(16, shards=4)
        for i in range(200):
            lru.put("key-%d" % i, i)
        assert len(lru) <= 16
        assert all(size <= lru.shard_capacity
                   for size in lru.shard_sizes())


class TestSharding:
    def test_placement_is_stable(self):
        one, two = ShardedLRU(64, shards=8), ShardedLRU(64, shards=8)
        for i in range(32):
            one.put("key-%d" % i, i)
            two.put("key-%d" % i, i)
        assert one.shard_sizes() == two.shard_sizes()

    def test_spread_over_shards(self):
        lru = ShardedLRU(1024, shards=8)
        for i in range(512):
            lru.put("%064x" % i, i)   # hex keys like content addresses
        sizes = lru.shard_sizes()
        assert sum(sizes) == 512
        assert all(size > 0 for size in sizes)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ShardedLRU(-1)
        with pytest.raises(ValueError):
            ShardedLRU(4, shards=0)


class TestByteBudget:
    """ByteBudgetLRU: the blob tier's byte-accounted variant."""

    def test_miss_then_hit(self):
        lru = ByteBudgetLRU(1024, shards=1)
        assert lru.get("a") is None
        lru.put("a", b"xyz")
        assert lru.get("a") == b"xyz"
        assert lru.total_bytes() == 3

    def test_evicts_by_bytes_not_entries(self):
        lru = ByteBudgetLRU(100, shards=1)
        lru.put("a", b"x" * 60)
        lru.put("b", b"y" * 60)          # 120 > 100: a evicted
        assert "a" not in lru and "b" in lru
        assert lru.stats["evictions"] == 1
        assert lru.total_bytes() == 60

    def test_refresh_reaccounts_bytes(self):
        lru = ByteBudgetLRU(100, shards=1)
        lru.put("a", b"x" * 80)
        lru.put("a", b"y" * 10)
        assert lru.total_bytes() == 10
        lru.put("b", b"z" * 80)          # 90 <= 100: both fit
        assert "a" in lru and "b" in lru

    def test_recency_decides_the_victim(self):
        lru = ByteBudgetLRU(100, shards=1)
        lru.put("a", b"x" * 40)
        lru.put("b", b"y" * 40)
        lru.get("a")                     # b is now least-recent
        lru.put("c", b"z" * 40)
        assert "b" not in lru
        assert "a" in lru and "c" in lru

    def test_oversize_value_bypasses(self):
        lru = ByteBudgetLRU(64, shards=1)
        lru.put("small", b"s" * 10)
        lru.put("huge", b"h" * 1000)     # larger than the whole shard
        assert "huge" not in lru
        assert "small" in lru, "oversize put must not thrash the shard"
        assert lru.stats["oversize"] == 1

    def test_budget_zero_disables(self):
        lru = ByteBudgetLRU(0)
        lru.put("a", b"data")
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_clear_resets_accounting(self):
        lru = ByteBudgetLRU(1024, shards=4)
        for i in range(8):
            lru.put("key-%d" % i, b"v" * 16)
        lru.clear()
        assert len(lru) == 0 and lru.total_bytes() == 0

    def test_per_shard_budget_respected(self):
        lru = ByteBudgetLRU(4096, shards=4)
        for i in range(256):
            lru.put("%064x" % i, bytes(32))
        assert lru.total_bytes() <= 4096

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ByteBudgetLRU(-1)
        with pytest.raises(ValueError):
            ByteBudgetLRU(64, shards=0)
