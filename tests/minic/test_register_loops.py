"""Unit tests for the register-carried forked-loop planner."""

import pytest

from repro.minic import compile_to_ast
from repro.minic.codegen import _forkable_body, _plan_register_loop


def plan_of(loop_source):
    unit = compile_to_ast("long G[4]; long main() { %s return 0; }"
                          % loop_source)
    from repro.minic import ast
    for stmt in unit.function("main").body.stmts:
        if isinstance(stmt, ast.For):
            return _plan_register_loop(stmt)
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                if isinstance(inner, ast.For):
                    return _plan_register_loop(inner)
    raise AssertionError("no for loop found")


class TestPlanner:
    def test_canonical_upward(self):
        plan = plan_of("long i; for (i = 0; i < 10; i = i + 1) G[0] = i;")
        assert plan is not None
        counter, limit, op, step = plan
        assert counter.name == "i" and op == "<" and step == 1

    def test_constant_plus_counter(self):
        plan = plan_of("long i; for (i = 0; i < 10; i = 1 + i) G[0] = i;")
        assert plan is not None

    def test_downward(self):
        plan = plan_of("long i; for (i = 9; i >= 0; i = i - 1) G[0] = i;")
        assert plan is not None
        assert plan[3] == -1

    def test_variable_limit(self):
        plan = plan_of(
            "long b = 7; long i; for (i = 0; i < b; i = i + 1) G[0] = i;")
        assert plan is not None
        from repro.minic import ast
        assert isinstance(plan[1], ast.Var)

    def test_global_limit_rejected(self):
        plan = plan_of(
            "long i; for (i = 0; i < G[0]; i = i + 1) G[1] = i;")
        assert plan is None

    def test_counter_assigned_in_body_rejected(self):
        plan = plan_of(
            "long i; for (i = 0; i < 10; i = i + 1) { i = i; }")
        assert plan is None

    def test_limit_assigned_in_body_rejected(self):
        plan = plan_of(
            "long b = 5; long i;"
            " for (i = 0; i < b; i = i + 1) { b = b - 1; }")
        assert plan is None

    def test_address_taken_rejected(self):
        plan = plan_of(
            "long i; long* p;"
            " for (i = 0; i < 10; i = i + 1) { p = &i; G[0] = *p; }")
        assert plan is None

    def test_shadowing_declaration_rejected(self):
        plan = plan_of(
            "long i; for (i = 0; i < 10; i = i + 1) { long i = 3; "
            "G[0] = i; }")
        assert plan is None

    def test_nonunit_step(self):
        plan = plan_of("long i; for (i = 0; i < 10; i = i + 3) G[0] = i;")
        assert plan is not None and plan[3] == 3

    def test_zero_step_rejected(self):
        plan = plan_of("long i; for (i = 0; i < 10; i = i + 0) break;")
        assert plan is None

    def test_compound_condition_rejected(self):
        plan = plan_of(
            "long i; for (i = 0; i + 1 < 10; i = i + 1) G[0] = i;")
        assert plan is None

    def test_mutation_in_nested_loop_detected(self):
        plan = plan_of(
            "long i; long j; for (i = 0; i < 4; i = i + 1) "
            "{ for (j = 0; j < 2; j = j + 1) { i = i + j; } }")
        assert plan is None


class TestForkableBody:
    def _body(self, source):
        unit = compile_to_ast("long main() { %s return 0; }" % source)
        from repro.minic import ast
        for stmt in unit.function("main").body.stmts:
            if isinstance(stmt, (ast.For, ast.While)):
                return stmt.body
        raise AssertionError("no loop")

    def test_plain_body(self):
        assert _forkable_body(self._body(
            "long i; for (i = 0; i < 3; i = i + 1) { out(i); }"))

    def test_return_rejected(self):
        assert not _forkable_body(self._body(
            "long i; for (i = 0; i < 3; i = i + 1) { return i; }"))

    def test_break_of_this_loop_rejected(self):
        assert not _forkable_body(self._body(
            "long i; for (i = 0; i < 3; i = i + 1) { break; }"))

    def test_break_of_nested_loop_ok(self):
        assert _forkable_body(self._body(
            "long i; for (i = 0; i < 3; i = i + 1)"
            " { while (1) { break; } }"))
