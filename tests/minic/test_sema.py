"""Unit tests for MiniC semantic analysis (scopes and pointer-depth typing)."""

import pytest

from repro.errors import CompileError
from repro.minic import compile_to_ast


def check(source):
    return compile_to_ast(source)


def check_main(body):
    return check("long main() { %s }" % body)


def expect_error(source, fragment):
    with pytest.raises(CompileError) as err:
        check(source)
    assert fragment in str(err.value)


class TestScopes:
    def test_undeclared_identifier(self):
        expect_error("long main() { return x; }", "undeclared")

    def test_block_scoping(self):
        expect_error("long main() { { long x = 1; } return x; }",
                     "undeclared")

    def test_shadowing_allowed(self):
        check_main("long x = 1; { long x = 2; out(x); } return x;")

    def test_redefinition_rejected(self):
        expect_error("long main() { long x; long x; return 0; }",
                     "redefinition")

    def test_global_function_collision(self):
        expect_error("long f = 1; long f() { return 0; }", "redefinition")

    def test_for_init_scope(self):
        expect_error(
            "long main() { for (long i = 0; i < 2; i = i + 1) ; return i; }",
            "undeclared")

    def test_param_visible(self):
        check("long f(long a) { return a; } long main() { return f(1); }")

    def test_function_used_as_value(self):
        expect_error("long f() { return 0; } long main() { return f; }",
                     "used as a value")


class TestCalls:
    def test_arity_checked(self):
        expect_error(
            "long f(long a) { return a; } long main() { return f(1, 2); }",
            "takes 1 argument")

    def test_unknown_function(self):
        expect_error("long main() { return g(); }", "undeclared function")

    def test_forward_calls_allowed(self):
        check("long main() { return g(); } long g() { return 1; }")

    def test_recursion_allowed(self):
        check("long f(long n) { return n ? f(n - 1) : 0; } "
              "long main() { return f(3); }")

    def test_out_builtin_arity(self):
        expect_error("long main() { out(1, 2); return 0; }",
                     "exactly one")

    def test_too_many_params(self):
        expect_error(
            "long f(long a, long b, long c, long d, long e, long g, long h)"
            " { return 0; } long main() { return 0; }",
            "too many parameters")

    def test_pointer_argument_depth_checked(self):
        expect_error(
            "long f(long* p) { return p[0]; }"
            "long main() { return f(3); }",
            "assign")


class TestPointerTyping:
    def test_depths_annotated(self):
        unit = check("""
        long A[4];
        long main() { long* p; p = A + 1; return p[0]; }
        """)
        ret = unit.function("main").body.stmts[2]
        assert ret.value.depth == 0

    def test_deref_long_rejected(self):
        expect_error("long main() { long x; return *x; }", "dereference")

    def test_index_long_rejected(self):
        expect_error("long main() { long x; return x[0]; }",
                     "not a pointer")

    def test_pointer_plus_pointer_rejected(self):
        expect_error("long A[2]; long main() { return A + A < A; }",
                     "two pointers")

    def test_pointer_difference_is_long(self):
        check("long A[4]; long main() { long* p; p = A + 3; return p - A; }")

    def test_long_minus_pointer_rejected(self):
        expect_error("long A[2]; long main() { long* p; p = A; "
                     "return (1 - p) == 0; }", "subtract")

    def test_pointer_multiplication_rejected(self):
        expect_error("long A[2]; long main() { return (A * 2) == 0; }",
                     "long operands")

    def test_assign_depth_mismatch(self):
        expect_error("long A[2]; long main() { long x; x = A; return x; }",
                     "assign")

    def test_assign_literal_zero_to_pointer(self):
        check("long main() { long* p; p = 0; return 0; }")

    def test_arrays_not_assignable(self):
        expect_error("long A[2]; long B[2]; long main() { A = B; return 0; }",
                     "not assignable")

    def test_address_of_lvalue(self):
        check("long main() { long x = 1; long* p; p = &x; return *p; }")

    def test_address_of_array_rejected(self):
        expect_error("long A[2]; long main() { return (&A) == 0; }",
                     "decays")

    def test_address_of_rvalue_rejected(self):
        expect_error("long main() { return (&(1 + 2)) == 0; }",
                     "not an lvalue")

    def test_return_pointer_rejected(self):
        expect_error("long A[2]; long main() { return A; }",
                     "return long")

    def test_ternary_branch_types(self):
        expect_error("long A[2]; long main() { long x; "
                     "return (1 ? A : x) == 0; }", "incompatible")

    def test_double_pointer(self):
        check("""
        long A[2];
        long f(long** pp) { return (*pp)[0]; }
        long main() { long* p; p = A; return f(&p); }
        """)


class TestLoops:
    def test_break_outside_loop(self):
        expect_error("long main() { break; return 0; }", "outside")

    def test_continue_outside_loop(self):
        expect_error("long main() { continue; return 0; }", "outside")

    def test_break_in_loop_ok(self):
        check_main("while (1) break; return 0;")
