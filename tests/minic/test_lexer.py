"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import CompileError
from repro.minic.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_keywords_vs_identifiers(self):
        assert kinds("long longer iff if") == [
            ("kw", "long"), ("ident", "longer"), ("ident", "iff"),
            ("kw", "if")]

    def test_all_keywords(self):
        for kw in ("long", "if", "else", "while", "for", "return", "break",
                   "continue"):
            assert tokenize(kw)[0].kind == "kw"

    def test_numbers(self):
        tokens = tokenize("0 42 0x1F")
        assert [t.value for t in tokens[:-1]] == [0, 42, 31]

    def test_number_too_large(self):
        with pytest.raises(CompileError):
            tokenize(str(2 ** 63))

    def test_bad_numeric_literal(self):
        with pytest.raises(CompileError):
            tokenize("12abc")

    def test_bad_hex(self):
        with pytest.raises(CompileError):
            tokenize("0x")

    def test_maximal_munch(self):
        assert kinds("a << b <= c < d") == [
            ("ident", "a"), ("op", "<<"), ("ident", "b"), ("op", "<="),
            ("ident", "c"), ("op", "<"), ("ident", "d")]

    def test_compound_assignment_rejected(self):
        with pytest.raises(CompileError):
            kinds("a <<= 1")

    def test_logical_operators(self):
        assert kinds("a && b || !c") == [
            ("ident", "a"), ("op", "&&"), ("ident", "b"), ("op", "||"),
            ("op", "!"), ("ident", "c")]

    def test_unexpected_character(self):
        with pytest.raises(CompileError) as err:
            tokenize("a @ b")
        assert "1:3" in str(err.value)


class TestTrivia:
    def test_line_comments(self):
        assert kinds("a // comment\n b") == [("ident", "a"), ("ident", "b")]

    def test_block_comments(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never ends")

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)
