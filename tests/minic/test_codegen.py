"""MiniC code generation tests: compiled programs run correctly."""

import pytest

from repro.errors import CompileError, ExecutionError
from repro.machine import run_sequential
from repro.minic import compile_source, compile_to_asm


def run_main(body, prelude=""):
    source = "%s\nlong main() { %s }" % (prelude, body)
    return run_sequential(compile_source(source))


def returns(body, prelude=""):
    result = run_main(body, prelude)
    value = result.return_value
    return value - 2**64 if value >= 2**63 else value


class TestExpressions:
    def test_arithmetic(self):
        assert returns("return 2 + 3 * 4 - 6 / 2;") == 11

    def test_division_truncates_toward_zero(self):
        assert returns("return -7 / 2;") == -3
        assert returns("return -7 %% 2;".replace("%%", "%")) == -1
        assert returns("return 7 / -2;") == -3

    def test_shifts(self):
        assert returns("return 1 << 10;") == 1024
        assert returns("return -8 >> 1;") == -4
        assert returns("long k = 3; return 5 << k;") == 40

    def test_bitwise(self):
        assert returns("return (12 & 10) | (1 ^ 3);") == 10

    def test_unary(self):
        assert returns("return -(-5);") == 5
        assert returns("return ~0;") == -1
        assert returns("return !0 + !7;") == 1

    def test_comparisons_yield_01(self):
        assert returns("return (3 < 5) + (5 < 3) * 10;") == 1
        assert returns("return (-1 < 1);") == 1       # signed compare

    def test_short_circuit_and(self):
        # The RHS divides by zero; short-circuit must skip it.
        assert returns("long z = 0; return 0 && (1 / z); ") == 0

    def test_short_circuit_or(self):
        assert returns("long z = 0; return 1 || (1 / z);") == 1

    def test_division_by_zero_traps(self):
        with pytest.raises(ExecutionError):
            run_main("long z = 0; return 1 / z;")

    def test_ternary(self):
        assert returns("return 1 ? 10 : 20;") == 10
        assert returns("long a = 0; return a ? 10 : 20;") == 20

    def test_assignment_value(self):
        assert returns("long a; long b; b = (a = 21) * 2; return b + a;") == 63

    def test_large_constants(self):
        assert returns("return 1 << 62;") == 1 << 62


class TestVariables:
    def test_globals(self):
        assert returns("g = g + 1; return g;", "long g = 41;") == 42

    def test_global_array_init(self):
        assert returns("return A[0] + A[2];", "long A[3] = {5, 6, 7};") == 12

    def test_global_array_zero_fill(self):
        assert returns("return A[3];", "long A[4] = {1};") == 0

    def test_local_array(self):
        assert returns("""
        long buf[4];
        long i;
        for (i = 0; i < 4; i = i + 1) buf[i] = i * i;
        return buf[3];
        """) == 9

    def test_pointer_walk(self):
        assert returns("""
        long* p;
        p = A;
        long s = 0;
        while (p - A < 3) { s = s + *p; p = p + 1; }
        return s;
        """, "long A[3] = {10, 20, 30};") == 60

    def test_address_of_local(self):
        assert returns("""
        long x = 5;
        long* p;
        p = &x;
        *p = *p + 37;
        return x;
        """) == 42

    def test_pointer_index_write(self):
        assert returns("""
        long* p;
        p = A + 1;
        p[1] = 99;
        return A[2];
        """, "long A[4];") == 99

    def test_negative_index(self):
        assert returns("""
        long* p;
        p = A + 2;
        return p[-1];
        """, "long A[3] = {1, 2, 3};") == 2


class TestControlFlow:
    def test_while_loop(self):
        assert returns("""
        long i = 0; long s = 0;
        while (i < 10) { s = s + i; i = i + 1; }
        return s;
        """) == 45

    def test_for_with_break_continue(self):
        assert returns("""
        long s = 0; long i;
        for (i = 0; i < 100; i = i + 1) {
            if (i == 10) break;
            if (i % 2) continue;
            s = s + i;
        }
        return s;
        """) == 20

    def test_nested_loops(self):
        assert returns("""
        long s = 0; long i; long j;
        for (i = 0; i < 4; i = i + 1)
            for (j = 0; j < i; j = j + 1)
                s = s + 1;
        return s;
        """) == 6

    def test_fallthrough_returns_zero(self):
        assert returns("long x = 5;") == 0

    def test_early_return(self):
        assert returns("return 1; return 2;") == 1


class TestFunctions:
    def test_six_args(self):
        assert returns(
            "return f(1, 2, 3, 4, 5, 6);",
            "long f(long a, long b, long c, long d, long e, long g) "
            "{ return a + 10*b + 100*c + 1000*d + 10000*e + 100000*g; }"
        ) == 654321

    def test_recursion_ackermann_small(self):
        assert returns(
            "return ack(2, 3);",
            """
            long ack(long m, long n) {
                if (m == 0) return n + 1;
                if (n == 0) return ack(m - 1, 1);
                return ack(m - 1, ack(m, n - 1));
            }
            """) == 9

    def test_mutual_recursion(self):
        assert returns(
            "return is_even(10) + is_odd(10) * 10;",
            """
            long is_even(long n) { return n == 0 ? 1 : is_odd(n - 1); }
            long is_odd(long n) { return n == 0 ? 0 : is_even(n - 1); }
            """) == 1

    def test_call_in_expression(self):
        assert returns(
            "return f(2) * f(3) + f(f(2));",
            "long f(long x) { return x + 1; }") == 16

    def test_out_returns_its_value(self):
        result = run_main("return out(7) + out(8);")
        assert result.signed_output == [7, 8]
        assert result.return_value == 15


class TestDriver:
    def test_missing_main_rejected(self):
        with pytest.raises(CompileError):
            compile_source("long f() { return 0; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(CompileError):
            compile_source("long main(long argc) { return 0; }")

    def test_no_main_allowed_when_not_required(self):
        compile_source("long f() { return 0; }", require_main=False)

    def test_asm_text_is_assemblable(self):
        asm = compile_to_asm("long g = 3; long main() { return g; }")
        assert "_start:" in asm and ".data" in asm

    def test_fork_mode_emits_fork(self):
        asm = compile_to_asm(
            "long f() { return 1; } long main() { return f(); }",
            fork_mode=True)
        assert "fork f" in asm and "endfork" in asm and "ret" not in asm.split()
