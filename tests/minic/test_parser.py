"""Unit tests for the MiniC parser (AST shapes, precedence, errors)."""

import pytest

from repro.errors import CompileError
from repro.minic import ast, parse


def parse_expr(text):
    unit = parse("long main() { return %s; }" % text)
    return unit.functions[0].body.stmts[0].value


class TestTopLevel:
    def test_globals_and_functions(self):
        unit = parse("""
        long n = 5;
        long A[4] = {1, 2, 3};
        long* p;
        long f(long x) { return x; }
        long main() { return f(n); }
        """)
        assert [g.name for g in unit.globals] == ["n", "A", "p"]
        assert [f.name for f in unit.functions] == ["f", "main"]
        assert unit.globals[1].array_size == 4
        assert unit.globals[1].init_values == [1, 2, 3]
        assert unit.globals[2].ptr_depth == 1

    def test_negative_global_init(self):
        unit = parse("long x = -7;")
        assert unit.globals[0].init_values == [-7]

    def test_too_many_initializers(self):
        with pytest.raises(CompileError):
            parse("long A[2] = {1, 2, 3};")

    def test_scalar_brace_initializer_rejected(self):
        with pytest.raises(CompileError):
            parse("long x = {1};")

    def test_pointer_return_rejected(self):
        with pytest.raises(CompileError):
            parse("long* f() { return 0; }")

    def test_zero_size_array_rejected(self):
        with pytest.raises(CompileError):
            parse("long A[0];")

    def test_params(self):
        unit = parse("long f(long a, long* b, long** c) { return 0; }")
        assert [(p.name, p.ptr_depth) for p in unit.functions[0].params] == [
            ("a", 0), ("b", 1), ("c", 2)]


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_shift_between_add_and_compare(self):
        expr = parse_expr("1 << 2 + 3")       # 1 << (2+3)
        assert expr.op == "<<"
        assert expr.right.op == "+"
        expr = parse_expr("1 < 2 << 3")       # 1 < (2<<3)
        assert expr.op == "<"

    def test_logical_lowest(self):
        expr = parse_expr("a == 1 && b < 2 || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-" and expr.left.op == "-"

    def test_assignment_right_associative(self):
        unit = parse("long main() { long a; long b; a = b = 1; return a; }")
        assign = unit.functions[0].body.stmts[2].expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Assign)

    def test_ternary(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Cond)
        assert isinstance(expr.other, ast.Cond)

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_unary_chains(self):
        expr = parse_expr("--a")              # -(-a); no decrement operator
        assert expr.op == "-" and expr.operand.op == "-"

    def test_deref_index_postfix(self):
        expr = parse_expr("*p[1]")            # *(p[1])
        assert isinstance(expr, ast.Unary) and expr.op == "*"
        assert isinstance(expr.operand, ast.Index)


class TestStatements:
    def _body(self, text):
        return parse("long main() { %s }" % text).functions[0].body.stmts

    def test_if_else(self):
        (stmt,) = self._body("if (1) return 1; else return 2;")
        assert isinstance(stmt, ast.If) and stmt.other is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = self._body("if (1) if (2) return 1; else return 2;")
        assert stmt.other is None
        assert stmt.then.other is not None

    def test_while(self):
        (stmt,) = self._body("while (1) { break; }")
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.body.stmts[0], ast.Break)

    def test_for_full(self):
        (stmt,) = self._body("for (long i = 0; i < 3; i = i + 1) continue;")
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.cond is not None and stmt.post is not None

    def test_for_empty_clauses(self):
        (stmt,) = self._body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.post is None

    def test_local_array(self):
        (stmt, _ret) = self._body("long buf[8]; return 0;")
        assert stmt.array_size == 8

    def test_local_array_initializer_rejected(self):
        with pytest.raises(CompileError):
            self._body("long buf[2] = 1;")

    def test_empty_statement(self):
        stmts = self._body("; return 0;")
        assert len(stmts) == 2

    def test_assignment_to_rvalue_rejected(self):
        with pytest.raises(CompileError):
            self._body("1 = 2;")

    def test_call_target_must_be_name(self):
        with pytest.raises(CompileError):
            self._body("(1 + 2)(3);")

    def test_unterminated_block(self):
        with pytest.raises(CompileError):
            parse("long main() { return 0;")

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            self._body("return 0")
