"""The Section 5 closed forms, validated against the executable models."""

import pytest

from repro import analytic
from repro.isa import assemble
from repro.machine import ForkedMachine
from repro.paper import SUM_FORKED_ASM, paper_array, sum_forked_program
from repro.sim import SimConfig, simulate


class TestClosedForms:
    def test_paper_instruction_counts(self):
        # "The number of instructions is 45·2ⁿ + 14(2ⁿ−1) ... (i.e. 45 for
        # sum(t,5), 104 for sum(t,10))".
        assert analytic.instructions(0) == 45
        assert analytic.instructions(1) == 104
        assert analytic.instructions(8) == 15090   # 1280 elements

    def test_paper_fetch_times(self):
        # "The fetch time is 30 + 12n (i.e. 30 for sum(t,5), 42 for
        # sum(t,10)) ... 15090 instructions are fetched in 126 cycles".
        assert analytic.fetch_cycles(0) == 30
        assert analytic.fetch_cycles(1) == 42
        assert analytic.fetch_cycles(8) == 126

    def test_paper_fetch_ipc(self):
        assert analytic.fetch_ipc(0) == pytest.approx(1.5)
        assert analytic.fetch_ipc(1) == pytest.approx(104 / 42)
        assert analytic.fetch_ipc(8) == pytest.approx(120, abs=0.5)

    def test_paper_retire_times(self):
        # "The retirement time is 43 + 15n ... retired in 163 cycles, i.e.
        # 92 instructions per cycle".
        assert analytic.retire_cycles(0) == 43
        assert analytic.retire_cycles(8) == 163
        assert analytic.retire_ipc(8) == pytest.approx(92, abs=1)

    def test_sizes(self):
        assert analytic.sum_sizes(0) == 5
        assert analytic.sum_sizes(8) == 1280

    def test_sections_for_sum5(self):
        assert analytic.sections(0) == 5     # Figure 4

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            analytic.instructions(-1)

    def test_table(self):
        table = analytic.paper_table(8)
        assert len(table) == 9
        assert table[0].row().startswith("n=0")
        assert table[8].instructions == 15090


class TestAgainstExecutableModels:
    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_instruction_count_matches_forked_machine(self, n):
        # Run sum(t, 5·2ⁿ) starting directly at the sum label, like the
        # paper does (no main lead-in).
        elements = analytic.sum_sizes(n)
        values = paper_array(elements)
        src = SUM_FORKED_ASM + "\n.data\nn: .quad %d\ntab: .quad %s\n" % (
            elements, ", ".join(map(str, values)))
        prog = assemble(src, entry="sum")
        init = {"rdi": prog.data_symbols["tab"], "rsi": elements}
        machine = ForkedMachine(prog, initial_regs=init)
        result = machine.run()
        assert result.steps == analytic.instructions(n)
        assert len(machine.section_table()) == analytic.sections(n)
        assert result.regs["rax"] == sum(values)

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_simulator_fetch_time_close_to_formula(self, n):
        elements = analytic.sum_sizes(n)
        values = paper_array(elements)
        src = SUM_FORKED_ASM + "\n.data\nn: .quad %d\ntab: .quad %s\n" % (
            elements, ", ".join(map(str, values)))
        prog = assemble(src, entry="sum")
        init = {"rdi": prog.data_symbols["tab"], "rsi": elements}
        cores = analytic.sections(n)
        result, _ = simulate(prog, SimConfig(n_cores=cores),
                             initial_regs=init)
        # The paper's creation-latency accounting differs from ours by a
        # small constant per nesting level; stay within 20%.
        formula = analytic.fetch_cycles(n)
        assert abs(result.fetch_end - formula) <= max(3, 0.2 * formula)
