"""Unit tests for the Chrome-trace exporter and the critical-path report."""

import json

import pytest

from repro.minic import compile_source
from repro.obs import critical_path, render_critical_path, to_chrome_trace
from repro.sim import SimConfig, simulate

PROGRAM = """
long A[8] = {4, 1, 6, 2, 9, 5, 7, 3};
long sum(long* t, long k) {
    if (k == 1) return t[0];
    return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
}
long main() { out(sum(A, 8)); return 0; }
"""


@pytest.fixture(scope="module")
def result():
    prog = compile_source(PROGRAM, fork_mode=True)
    return simulate(prog, SimConfig(n_cores=6, events=True))[0]


class TestChromeTrace:
    def test_requires_events(self):
        prog = compile_source(PROGRAM, fork_mode=True)
        plain, _ = simulate(prog, SimConfig(n_cores=2))
        with pytest.raises(ValueError, match="events=True"):
            to_chrome_trace(plain)

    def test_document_shape(self, result):
        doc = to_chrome_trace(result, title="t")
        json.dumps(doc)                       # fully serializable
        assert doc["otherData"]["title"] == "t"
        assert doc["otherData"]["cycles"] == result.cycles
        assert doc["traceEvents"]

    def test_every_section_has_a_slice(self, result):
        doc = to_chrome_trace(result)
        slices = [e for e in doc["traceEvents"]
                  if e.get("ph") == "X" and e.get("cat") == "section"]
        assert len(slices) == result.sections
        names = {e["name"] for e in slices}
        assert "s1" in names

    def test_process_metadata_per_core(self, result):
        doc = to_chrome_trace(result)
        procs = {e["pid"] for e in doc["traceEvents"]
                 if e.get("name") == "process_name"}
        assert procs == set(range(len(result.per_core_instructions)))

    def test_flow_arrows_start_and_finish(self, result):
        doc = to_chrome_trace(result)
        starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
        ends = [e for e in doc["traceEvents"] if e.get("ph") == "f"]
        assert len(starts) == result.requests
        assert len(ends) == result.requests
        # flow ids pair up start/finish
        assert {e["id"] for e in starts} == {e["id"] for e in ends}

    def test_counter_tracks_present(self, result):
        doc = to_chrome_trace(result)
        counters = {e["name"] for e in doc["traceEvents"]
                    if e.get("ph") == "C"}
        assert "running cores" in counters
        assert "retired/cycle" in counters

    def test_timestamps_within_run(self, result):
        doc = to_chrome_trace(result)
        for entry in doc["traceEvents"]:
            if "ts" in entry:
                assert 0 <= entry["ts"] <= result.cycles


class _Truncated:
    """A SimResult stand-in carrying a sliced event stream, as a consumer
    that cut the stream mid-run (or a crashed run) would hand over."""

    def __init__(self, result, keep):
        self.events = result.events[:keep]
        self.cycles = result.cycles
        self.sections = result.sections
        self.instructions = result.instructions
        self.scheduler = result.scheduler
        self.per_core_instructions = result.per_core_instructions
        self.section_occupancy = result.section_occupancy


class TestTruncatedStreams:
    """Exporters must degrade gracefully on empty / cut-short streams
    instead of raising KeyError on half-recorded requests or sections."""

    def test_chrome_trace_every_prefix(self, result):
        for keep in (0, 1, len(result.events) // 3,
                     len(result.events) // 2):
            doc = to_chrome_trace(_Truncated(result, keep))
            json.dumps(doc)
            assert doc["otherData"]["cycles"] == result.cycles

    def test_critical_path_every_prefix(self, result):
        for keep in (0, 1, len(result.events) // 3,
                     len(result.events) // 2):
            steps = critical_path(_Truncated(result, keep))
            text = render_critical_path(steps, result.cycles)
            assert text.startswith("critical path")

    def test_empty_stream_yields_empty_walk(self, result):
        assert critical_path(_Truncated(result, 0)) == []


class TestCriticalPath:
    def test_requires_events(self):
        prog = compile_source(PROGRAM, fork_mode=True)
        plain, _ = simulate(prog, SimConfig(n_cores=2))
        with pytest.raises(ValueError, match="events=True"):
            critical_path(plain)

    def test_walk_shape(self, result):
        steps = critical_path(result)
        assert steps[0]["kind"] == "section"
        # the walk starts at the last-completing section
        last = max(result.section_occupancy.values(),
                   key=lambda s: s["completed"])
        assert steps[0]["complete"] == last["completed"]
        kinds = {s["kind"] for s in steps}
        assert kinds <= {"section", "request", "fork"}
        # sections never repeat (the seen-set guard)
        sids = [s["sid"] for s in steps if s["kind"] == "section"]
        assert len(sids) == len(set(sids))

    def test_request_links_gate_their_section(self, result):
        # a request step always sits between its consumer section and the
        # producer: it filled after the consumer's first fetch (else it
        # would not gate it) and before the consumer completed
        steps = critical_path(result)
        for prev, step in zip(steps, steps[1:]):
            if step["kind"] != "request" or prev["kind"] != "section":
                continue
            assert prev["start"] < step["cycle"] <= prev["complete"]
            assert step["issue"] <= step["cycle"]

    def test_render(self, result):
        text = render_critical_path(critical_path(result), result.cycles)
        assert text.startswith("critical path")
        assert "chain:" in text
        assert "s1" in text

    def test_render_empty(self):
        assert "no completed sections" in render_critical_path([], 0)

    def test_identical_across_schedulers(self):
        prog = compile_source(PROGRAM, fork_mode=True)
        walks = []
        for mode in (False, True):
            res, _ = simulate(prog, SimConfig(n_cores=6, events=True,
                                              event_driven=mode))
            walks.append(critical_path(res))
        assert walks[0] == walks[1]
