"""Typed metrics layer: instruments, merge algebra, derivation invariants.

Three concerns:

* **merge algebra** (hypothesis) — merging per-core windowed series must
  be order-independent (commutative + associative element-wise sums),
  because the cycle-domain derivation folds cores in whatever order the
  processor stores them and bit-identity across kernels depends on the
  fold being order-blind;
* **cross-layer accounting** — the windowed core-state breakdown must
  sum to the PR 1 occupancy histograms, and its blocked+parked totals
  must equal the PR 2 stall-attribution per-core sums: three independent
  derivations of the same cycles must agree exactly;
* **exporters** — registry JSON shape and Prometheus text exposition.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fork import fork_transform
from repro.obs.metrics import (CYCLE_DOMAIN, HOST_DOMAIN, Counter, Gauge,
                               Histogram, MetricsRegistry, TimeSeries,
                               cycle_metrics_to_registry,
                               derive_cycle_metrics, merge_series,
                               render_prometheus, state_series,
                               window_count, window_lengths)
from repro.sim import SimConfig, simulate
from repro.workloads import get_workload

WINDOW = 37


def _run(short="quicksort", **overrides):
    inst = get_workload(short).instance(scale=0, seed=1)
    knobs = dict(n_cores=8, metrics_window=WINDOW, events=True,
                 stack_shortcut=True)
    knobs.update(overrides)
    result, _ = simulate(fork_transform(inst.program), SimConfig(**knobs))
    return result


@pytest.fixture(scope="module")
def run():
    return _run()


# -- merge algebra (the order-independence property) -------------------------

_series_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=50), min_size=6,
             max_size=6),
    min_size=1, max_size=8)


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(series=_series_lists, seed=st.randoms(use_true_random=False))
    def test_merge_is_order_independent(self, series, seed):
        shuffled = list(series)
        seed.shuffle(shuffled)
        assert merge_series(shuffled) == merge_series(series)

    @settings(max_examples=40, deadline=None)
    @given(series=_series_lists,
           split=st.integers(min_value=0, max_value=8))
    def test_merge_is_associative(self, series, split):
        split = min(split, len(series))
        left, right = series[:split], series[split:]
        parts = [p for p in (merge_series(left), merge_series(right)) if p]
        assert merge_series(parts) == merge_series(series)

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            merge_series([[1, 2], [1, 2, 3]])
        assert merge_series([]) == []

    @settings(max_examples=40, deadline=None)
    @given(states=st.lists(st.integers(min_value=0, max_value=3),
                           max_size=40),
           window=st.integers(min_value=1, max_value=9))
    def test_state_series_partitions_every_cycle(self, states, window):
        n = window_count(len(states), window)
        rows = state_series(states, window, n)
        # every traced cycle lands in exactly one (state, window) cell
        assert sum(sum(row) for row in rows) == len(states)
        assert merge_series(rows) == [
            min(window, len(states) - w * window) for w in range(n)]


# -- windows -----------------------------------------------------------------

class TestWindows:
    @settings(max_examples=60, deadline=None)
    @given(cycles=st.integers(min_value=0, max_value=10_000),
           window=st.integers(min_value=1, max_value=500))
    def test_window_lengths_cover_the_run(self, cycles, window):
        lengths = window_lengths(cycles, window)
        assert sum(lengths) == cycles
        assert len(lengths) == window_count(cycles, window)
        assert all(1 <= length <= window for length in lengths)

    def test_series_clamps_stray_cycles(self):
        series = TimeSeries("x", window=10, n_windows=3)
        series.observe(0)      # pre-run event -> first window
        series.observe(31)     # past the horizon -> last window
        series.observe(999)
        assert series.values == [1, 0, 2]
        assert series.total() == 3 and series.last() == 2


# -- the cycle-domain derivation against independent layers ------------------

class TestDerivationInvariants:
    def test_totals_match_result_counters(self, run):
        totals = run.metrics["totals"]
        assert totals["fetched"] == run.instructions
        assert totals["retired"] == run.instructions
        assert totals["forks"] + 1 == run.sections
        assert totals["completions"] == run.sections
        assert totals["requests_issued"] == run.requests
        assert totals["noc_messages"] == run.noc_stats["messages"]
        assert totals["noc_busy_cycles"] == run.noc_stats["hop_cycles"]
        assert totals["dmh_reads"] == run.noc_stats["dmh_reads"]

    def test_state_cycles_match_occupancy_histograms(self, run):
        # chip-wide windowed state breakdown vs the PR 1 occupancy layer:
        # both fold the same per-cycle timelines, via different code paths
        states = run.metrics["series"]["core_state_cycles"]
        for name in ("fetching", "computing", "blocked", "parked"):
            occupancy_total = sum(h.get(name, 0)
                                  for h in run.core_occupancy)
            assert sum(states[name]) == occupancy_total, name

    def test_blocked_parked_match_stall_attribution(self, run):
        # the PR 2 stall attribution classifies exactly the blocked +
        # parked cycles; its per-core sums must equal our state totals
        states = run.metrics["series"]["core_state_cycles"]
        attributed = sum(sum(c.values())
                         for c in run.stall_causes["per_core"])
        assert sum(states["blocked"]) + sum(states["parked"]) == attributed

    def test_every_window_conserves_core_cycles(self, run):
        metrics = run.metrics
        states = metrics["series"]["core_state_cycles"]
        n_cores = len(run.per_core_instructions)
        for w, length in enumerate(window_lengths(metrics["cycles"],
                                                  metrics["window"])):
            in_window = sum(states[name][w] for name in states)
            assert in_window == n_cores * length

    def test_link_series_sum_to_chip_series(self, run):
        metrics = run.metrics
        noc_links = [e for name, e in metrics["links"].items()
                     if not name.startswith("dmh")]
        assert merge_series(e["messages"] for e in noc_links) == \
            metrics["series"]["noc_messages"]
        assert merge_series(e["busy_cycles"] for e in noc_links) == \
            metrics["series"]["noc_busy_cycles"]

    def test_retire_rate_is_retired_over_window_length(self, run):
        metrics = run.metrics
        lengths = window_lengths(metrics["cycles"], metrics["window"])
        for w, rate in enumerate(metrics["series"]["retire_rate"]):
            assert math.isclose(
                rate, metrics["series"]["retired"][w] / lengths[w])

    def test_queue_depth_never_negative_and_drains(self, run):
        depth = run.metrics["series"]["request_queue_depth"]
        assert all(d >= 0 for d in depth)
        # fault-free: every request resolves, so the queue ends empty
        assert depth[-1] == 0

    def test_window_one_degenerates_to_per_cycle(self):
        run = _run(metrics_window=1)
        metrics = run.metrics
        assert metrics["windows"] == metrics["cycles"]
        assert sum(metrics["series"]["retired"]) == run.instructions

    def test_default_config_has_no_metrics(self):
        assert _run(metrics_window=None).metrics is None

    def test_metrics_absent_from_json_export_when_off(self):
        off = _run(metrics_window=None).to_json_dict()
        on = _run().to_json_dict()
        assert "metrics" not in off
        assert on["metrics"]["schema_version"] == 1
        assert on["metrics"]["domain"] == CYCLE_DOMAIN


# -- instruments and registry ------------------------------------------------

class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("jobs")
        c.inc(); c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(5.0); g.add(-2)
        assert g.value == 3.0

    def test_histogram_buckets_and_merge(self):
        h = Histogram("wall", bounds=(1.0, 5.0))
        for v in (0.5, 2.0, 99.0):
            h.observe(v)
        assert h.counts == [1, 1, 1] and h.count == 3
        merged = h.merge(h)
        assert merged.counts == [2, 2, 2] and merged.sum == 2 * h.sum
        with pytest.raises(ValueError):
            h.merge(Histogram("wall", bounds=(1.0, 2.0)))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_registry_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry(HOST_DOMAIN)
        a = reg.counter("jobs", status="ok")
        b = reg.counter("jobs", status="ok")
        c = reg.counter("jobs", status="failed")
        assert a is b and a is not c
        with pytest.raises(ValueError):
            reg.gauge("jobs", status="ok")   # name/kind collision
        with pytest.raises(ValueError):
            MetricsRegistry("weather")

    def test_series_merge_rejects_shape_mismatch(self):
        a = TimeSeries("x", window=10, n_windows=3)
        b = TimeSeries("x", window=10, n_windows=4)
        with pytest.raises(ValueError):
            a.merge(b)


# -- exporters ---------------------------------------------------------------

class TestExporters:
    def test_registry_json_shape(self):
        reg = MetricsRegistry(HOST_DOMAIN)
        reg.counter("jobs", "jobs seen", status="ok").inc(2)
        payload = reg.to_json_dict()
        assert payload["schema_version"] == 1
        assert payload["domain"] == HOST_DOMAIN
        assert payload["metrics"] == [
            {"type": "counter", "name": "jobs", "help": "jobs seen",
             "labels": {"status": "ok"}, "value": 2}]

    def test_prometheus_exposition(self):
        reg = MetricsRegistry(HOST_DOMAIN)
        reg.counter("jobs", "jobs seen", status="ok").inc(2)
        reg.gauge("pool_size").set(4)
        h = reg.histogram("wall_seconds", bounds=(0.1, 1.0))
        h.observe(0.05); h.observe(0.5); h.observe(10.0)
        text = reg.render_prometheus()
        assert '# TYPE repro_jobs counter' in text
        assert 'repro_jobs{domain="host",status="ok"} 2' in text
        assert 'repro_pool_size{domain="host"} 4' in text
        # cumulative buckets + +Inf (Prometheus convention)
        assert 'repro_wall_seconds_bucket{domain="host",le="0.1"} 1' in text
        assert 'repro_wall_seconds_bucket{domain="host",le="1.0"} 2' in text
        assert 'repro_wall_seconds_bucket{domain="host",le="+Inf"} 3' in text
        assert 'repro_wall_seconds_count{domain="host"} 3' in text

    def test_prometheus_series_flatten_to_total_and_last(self):
        reg = MetricsRegistry(CYCLE_DOMAIN)
        inst = reg.series("retired", window=10, n_windows=3)
        inst.values = [5, 0, 2]
        text = reg.render_prometheus()
        assert 'repro_retired_total{domain="cycle"} 7' in text
        assert 'repro_retired_last{domain="cycle"} 2' in text

    def test_prometheus_rejects_unknown_instrument(self):
        with pytest.raises(ValueError):
            render_prometheus({"domain": "cycle",
                               "metrics": [{"type": "sparkline",
                                            "name": "x"}]})

    def test_cycle_metrics_round_trip_to_registry(self, run):
        reg = cycle_metrics_to_registry(run.metrics)
        text = reg.render_prometheus()
        assert ('repro_sim_retired_total{domain="cycle"} %d'
                % run.instructions) in text
        assert 'repro_sim_cycles{domain="cycle"} %d' % run.cycles in text
        # one labelled series per link per track
        assert 'link="dmh' in text
