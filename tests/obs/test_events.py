"""Unit tests for repro.obs.events: the trace container, the park/wake
synthesizer and the section/request timeline reconstructions."""

from repro.obs.events import (EVENT_KINDS, EventTrace,
                              collect_fault_windows, collect_requests,
                              collect_sections, events_to_json,
                              request_what_str, synthesize_core_events)
from repro.sim.stats import BLOCKED, COMPUTING, CORE_STATES, FETCHING, PARKED


class TestEventTrace:
    def test_emit_appends_tuples(self):
        trace = EventTrace()
        trace.emit(3, "retire", sid=1, index=0)
        trace.emit(4, "retire", sid=1, index=1)
        assert trace.events == [(3, "retire", {"sid": 1, "index": 0}),
                                (4, "retire", {"sid": 1, "index": 1})]

    def test_kind_field_does_not_collide(self):
        # request_issue carries a field literally named "kind"
        trace = EventTrace()
        trace.emit(1, "request_issue", rid=0, kind="mem", sid=1, core=0,
                   what=64)
        assert trace.events[0][2]["kind"] == "mem"

    def test_streams_compare_by_equality(self):
        a, b = EventTrace(), EventTrace()
        for t in (a, b):
            t.emit(1, "section_start", sid=1, core=0)
        assert a.events == b.events


class TestSynthesizeCoreEvents:
    def _run(self, *state_rows):
        return synthesize_core_events(list(state_rows), CORE_STATES,
                                      (BLOCKED, PARKED))

    def test_empty_timeline(self):
        assert self._run([]) == []
        assert self._run() == []

    def test_never_stalled(self):
        assert self._run([FETCHING, COMPUTING, FETCHING]) == []

    def test_single_stall_run(self):
        events = self._run([FETCHING, BLOCKED, BLOCKED, FETCHING])
        assert events == [(2, "core_park", {"core": 0, "state": "blocked"}),
                          (4, "core_wake", {"core": 0})]

    def test_stall_to_end_has_no_wake(self):
        events = self._run([FETCHING, PARKED, PARKED])
        assert events == [(2, "core_park", {"core": 0, "state": "parked"})]

    def test_park_state_is_the_runs_first(self):
        # a blocked->parked transition within one run keeps one park event
        events = self._run([BLOCKED, PARKED, FETCHING])
        assert events == [(1, "core_park", {"core": 0, "state": "blocked"}),
                          (3, "core_wake", {"core": 0})]

    def test_multiple_cores_tagged(self):
        events = self._run([BLOCKED, FETCHING], [FETCHING, PARKED])
        cores = sorted(f["core"] for _, kind, f in events
                       if kind == "core_park")
        assert cores == [0, 1]


class TestReconstruction:
    EVENTS = [
        (5, "section_fork", {"parent": 1, "child": 2, "core": 1,
                             "first_fetch": 7}),
        (7, "section_start", {"sid": 2, "core": 1}),
        (8, "request_issue", {"rid": 0, "kind": "reg", "sid": 2, "core": 1,
                              "what": "rbx"}),
        (8, "request_hop", {"rid": 0, "src": 1, "dst": 0, "sid": 1,
                            "wait": 2}),
        (12, "request_hit", {"rid": 0, "sid": 1, "core": 0}),
        (20, "request_reply", {"rid": 0, "src": 0, "dst": 1, "arrive": 22}),
        (22, "request_fill", {"rid": 0, "sid": 2, "value": 9}),
        (30, "section_complete", {"sid": 2, "core": 1}),
    ]

    def test_collect_sections_seeds_root(self):
        sections = collect_sections([])
        assert sections == {1: {"sid": 1, "core": 0, "created": 0,
                                "first_fetch": 1, "start": None,
                                "complete": None, "parent": None}}

    def test_collect_sections(self):
        sections = collect_sections(self.EVENTS)
        sec = sections[2]
        assert sec["created"] == 5 and sec["first_fetch"] == 7
        assert sec["start"] == 7 and sec["complete"] == 30
        assert sec["parent"] == 1
        assert sections[1]["complete"] is None

    def test_collect_requests(self):
        req = collect_requests(self.EVENTS)[0]
        assert req["sid"] == 2 and req["kind"] == "reg"
        assert req["issue"] == 8 and req["fill"] == 22
        assert req["producer"] == 1 and not req["dmh"]
        assert req["hops"] == 1
        assert req["path"] == [(8, 0, 1)]
        assert (8, 10) in req["transit"]      # the hop flight
        assert (20, 22) in req["transit"]     # the reply flight

    def test_dmh_transit_only_for_register_reads(self):
        issue = {"rid": 1, "kind": "mem", "sid": 1, "core": 0, "what": 64}
        events = [(3, "request_issue", issue),
                  (4, "request_dmh", {"rid": 1, "core": 0, "arrive": 6})]
        req = collect_requests(events)[1]
        assert req["dmh"] and req["transit"] == []
        events[0] = (3, "request_issue", dict(issue, kind="reg", what="rax"))
        req = collect_requests(events)[1]
        assert req["transit"] == [(4, 6)]

    def test_what_str(self):
        assert request_what_str({"kind": "reg", "what": "rax"}) == "rax"
        assert request_what_str({"kind": "mem", "what": 0x40}) == "0x40"

    def test_events_to_json(self):
        flat = events_to_json(self.EVENTS)
        assert flat[0] == {"cycle": 5, "kind": "section_fork", "parent": 1,
                           "child": 2, "core": 1, "first_fetch": 7}
        assert len(flat) == len(self.EVENTS)

    def test_fixture_kinds_are_declared(self):
        assert {kind for _, kind, _ in self.EVENTS} <= set(EVENT_KINDS)

    def test_truncated_stream_skips_unknown_sids(self):
        # a stream cut after the fork events were dropped must not KeyError
        truncated = [e for e in self.EVENTS if e[1] != "section_fork"]
        sections = collect_sections(truncated)
        assert 2 not in sections            # silently skipped, root remains
        assert 1 in sections

    def test_truncated_stream_skips_unknown_rids(self):
        truncated = [e for e in self.EVENTS if e[1] != "request_issue"]
        assert collect_requests(truncated) == {}

    def test_empty_stream(self):
        assert collect_requests([]) == {}
        assert collect_fault_windows([]) == {}


class TestCollectFaultWindows:
    def test_redispatch_window(self):
        events = [(50, "section_redispatch",
                   {"sid": 3, "src": 1, "dst": 0, "first_fetch": 59})]
        assert collect_fault_windows(events) == {3: [(50, 59)]}

    def test_retry_window_ends_at_resend(self):
        events = [(30, "msg_retry", {"rid": 7, "sid": 2, "src": 0,
                                     "dst": 1, "attempt": 1, "wait": 4})]
        assert collect_fault_windows(events) == {2: [(26, 30)]}

    def test_windows_accumulate_per_sid(self):
        events = [
            (30, "msg_retry", {"rid": 7, "sid": 2, "src": 0, "dst": 1,
                               "attempt": 1, "wait": 4}),
            (50, "section_redispatch", {"sid": 2, "src": 1, "dst": 0,
                                        "first_fetch": 59}),
        ]
        assert collect_fault_windows(events) == {2: [(26, 30), (50, 59)]}
