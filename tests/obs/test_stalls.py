"""Unit tests for repro.obs.stalls: interval algebra, the per-cycle
classifier and the end-to-end attribution invariants."""

from repro.minic import compile_source
from repro.obs import STALL_CAUSES, summarize_causes
from repro.obs.stalls import _IntervalSet, _subtract
from repro.sim import SimConfig, simulate

PROGRAM = """
long A[6] = {4, 1, 6, 2, 9, 5};
long sum(long* t, long k) {
    if (k == 1) return t[0];
    return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
}
long main() { out(sum(A, 6)); return 0; }
"""


def _run(**cfg):
    prog = compile_source(PROGRAM, fork_mode=True)
    return simulate(prog, SimConfig(events=True, **cfg))[0]


class TestIntervalSet:
    def test_empty(self):
        s = _IntervalSet([])
        assert not s.covers(0) and not s.covers(100)

    def test_half_open_left(self):
        s = _IntervalSet([(3, 6)])
        assert not s.covers(3)          # (3, 6] excludes the left edge
        assert s.covers(4) and s.covers(6)
        assert not s.covers(7)

    def test_merges_overlaps_and_touching(self):
        s = _IntervalSet([(1, 4), (3, 7), (7, 9)])
        assert all(s.covers(c) for c in range(2, 10))
        assert not s.covers(1) and not s.covers(10)
        assert len(s.starts) == 1

    def test_drops_empty_windows(self):
        s = _IntervalSet([(5, 5), (9, 4)])
        assert s.starts == []

    def test_disjoint_lookup(self):
        s = _IntervalSet([(0, 2), (10, 12)])
        assert s.covers(1) and s.covers(11)
        assert not s.covers(5)


class TestSubtract:
    def test_no_cuts(self):
        assert _subtract((2, 9), []) == [(2, 9)]

    def test_middle_cut(self):
        assert _subtract((0, 10), [(3, 6)]) == [(0, 3), (6, 10)]

    def test_cut_swallows_window(self):
        assert _subtract((4, 6), [(0, 10)]) == []

    def test_multiple_cuts_sorted_or_not(self):
        assert _subtract((0, 10), [(7, 8), (2, 3)]) == [(0, 2), (3, 7),
                                                        (8, 10)]

    def test_edge_touching_cuts(self):
        assert _subtract((2, 8), [(0, 2), (8, 12)]) == [(2, 8)]


class TestAttribution:
    def test_all_blocked_cycles_get_a_cause(self):
        result = _run(n_cores=4)
        causes = result.stall_causes
        assert causes["causes"] == list(STALL_CAUSES)
        for counts, histogram in zip(causes["per_core"],
                                     result.core_occupancy):
            assert sum(counts.values()) == (histogram["blocked"]
                                            + histogram["parked"])

    def test_per_section_sums_match_occupancy(self):
        result = _run(n_cores=4)
        for sid, counts in result.stall_causes["per_section"].items():
            occ = result.section_occupancy[sid]
            assert sum(counts.values()) == occ["blocked_cycles"], sid

    def test_idle_dominates_on_overprovisioned_machine(self):
        # far more cores than sections: most stalled cycles have no live
        # section to blame
        result = _run(n_cores=32)
        totals = result.stall_causes["totals"]
        assert totals["idle"] > totals["wait_register"]
        assert totals["idle"] > totals["wait_memory"]

    def test_single_core_never_idle_while_sections_live(self):
        result = _run(n_cores=1)
        per_section = result.stall_causes["per_section"]
        # every section lives on core 0; its non-fetch cycles are
        # attributed to real causes, not idle
        assert all("idle" not in {c for c, n in counts.items() if n}
                   or counts["idle"] == 0
                   for counts in per_section.values())

    def test_fork_latency_visible(self):
        result = _run(n_cores=8)
        totals = result.stall_causes["totals"]
        # every forked section waits section_create_latency cycles
        assert totals["fork_latency"] > 0

    def test_noc_latency_shifts_attribution(self):
        near = _run(n_cores=8)
        far = _run(n_cores=8, noc_latency=6)
        assert (far.stall_causes["totals"]["noc_transit"]
                > near.stall_causes["totals"]["noc_transit"])


class TestSummarize:
    def test_stable_order_and_defaults(self):
        line = summarize_causes({"wait_memory": 3})
        assert line.startswith("wait_register=0  wait_memory=3")
        assert line.index("noc_transit") < line.index("idle")


class TestDeadlockDiagnostic:
    def test_diagnostic_tags_live_causes(self):
        import pytest
        # Tiny budget forces the budget-exhausted diagnostic path.
        prog = compile_source(PROGRAM, fork_mode=True)
        with pytest.raises(Exception) as info:
            simulate(prog, SimConfig(n_cores=4, max_cycles=40))
        message = str(info.value)
        assert "stuck sections" in message
        assert "[wait_" in message or "[noc_transit]" in message

    def test_diagnostic_identical_across_schedulers(self):
        import pytest
        prog = compile_source(PROGRAM, fork_mode=True)
        messages = {}
        for mode in (False, True):
            with pytest.raises(Exception) as info:
                simulate(prog, SimConfig(n_cores=4, max_cycles=40,
                                         event_driven=mode))
            messages[mode] = str(info.value)
        assert messages[False] == messages[True]
