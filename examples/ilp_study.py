#!/usr/bin/env python3
"""A miniature of the paper's Section 3 ILP limit study (Figure 7).

Picks a few Table 1 workloads, traces them at doubling dataset sizes, and
schedules each trace under four models:

* the paper's *sequential* model (register renaming, real memory deps),
* the paper's *parallel* model (everything renamed, no rsp deps),
* Wall's "good" finite machine (2K window, 64-wide, 2-bit predictor),
* a no-memory-renaming ablation of the parallel model.

    python examples/ilp_study.py [workload ...]
"""

import sys

from repro.ilp import PARALLEL_MODEL, SEQUENTIAL_MODEL, wall_good_model
from repro.ilp.analyzer import analyze_stream_multi
from repro.workloads import WORKLOADS, get_workload


def main() -> None:
    names = sys.argv[1:] or ["bfs", "quicksort", "mis", "matching"]
    workloads = [get_workload(name) for name in names]
    models = [
        SEQUENTIAL_MODEL,
        PARALLEL_MODEL,
        wall_good_model(),
        PARALLEL_MODEL.derive("par-no-memrename", rename_memory=False),
    ]
    header = "%-12s %6s %9s" + " %12s" * len(models)
    row = "%-12s %6d %9d" + " %12.1f" * len(models)
    print(header % (("workload", "n", "instrs")
                    + tuple(m.name for m in models)))
    for workload in workloads:
        for scale in (0, 1, 2, 3):
            inst = workload.instance(scale=scale, seed=1)
            results = analyze_stream_multi(inst.trace_entries(), models)
            print(row % ((workload.short, inst.n, results[0].instructions)
                         + tuple(r.ilp for r in results)))
        print()
    print("Things to notice (the paper's Figure 7 story):")
    print(" * 'sequential' stays flat at ~3-5 regardless of dataset size;")
    print(" * 'parallel' is 1-3 orders of magnitude higher and grows with")
    print("   the dataset for the data-parallel workloads;")
    print(" * Wall's finite machine sits near the sequential limit;")
    print(" * withholding memory renaming collapses most of the gap —")
    print("   renaming memory is the key mechanism (paper Section 4.2).")


if __name__ == "__main__":
    main()
