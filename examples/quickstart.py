#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Runs the Figure 2 sequential ``sum`` and the Figure 5 forked ``sum`` on the
functional machines, shows the section structure (Figures 4/6), then
simulates the forked program on five cores and prints the Figure 10 timing
table.

    python examples/quickstart.py [n_elements]
"""

import sys

from repro import run_forked, run_sequential, simulate, SimConfig
from repro.fork import render_section_tree
from repro.paper import paper_array, sum_forked_program, sum_sequential_program


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    values = paper_array(n)
    print("summing t[0..%d] = 1..%d (expected %d)\n" % (n - 1, n, sum(values)))

    # 1. Figure 2: sequential call/ret execution.
    seq = run_sequential(sum_sequential_program(values))
    print("sequential run : result=%d in %d instructions"
          % (seq.signed_output[0], seq.steps))

    # 2. Figure 5: the same algorithm under the fork/endfork section model.
    forked_prog = sum_forked_program(values)
    forked, machine = run_forked(forked_prog)
    print("forked run     : result=%d in %d instructions, %d sections"
          % (forked.signed_output[0], forked.steps,
             len(machine.section_table())))
    print("\nsection tree (the paper's Figure 4):")
    print(render_section_tree(machine))

    # 3. The distributed many-core simulator (Figures 8-10).
    cores = min(16, len(machine.section_table()))
    result, proc = simulate(forked_prog, SimConfig(n_cores=cores))
    print("\nsimulated on %d cores: %s" % (cores, result.describe()))
    assert result.signed_outputs == seq.signed_output
    print("simulator result matches the sequential machine: OK")

    if n <= 8:
        print("\nper-instruction stage timing (the paper's Figure 10):")
        print(proc.timing_table())


if __name__ == "__main__":
    main()
