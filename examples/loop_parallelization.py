#!/usr/bin/env python3
"""The paper's Section 5 extension: parallelizing loops with sections.

"For loops can be vectorized, each iteration forming a separate section ...
While loops can be parallelized, launching each iteration in sequence (no
speculation) but parallelizing their bodies."

This example compiles a stencil-style loop program twice — once normally
and once with ``fork_loops`` (each eligible iteration body becomes its own
section) — and compares the simulated fetch parallelism.

    python examples/loop_parallelization.py
"""

from repro import run_forked, run_sequential, simulate, SimConfig
from repro.minic import compile_source

SOURCE = """
long A[128];
long B[128];
long n = 128;

long main() {
    // Loop-invariant bounds hoisted into locals, as any optimizing C
    // compiler would: the forked-loop codegen can then keep the iteration
    // counter and bound in fork-copied registers (the paper: the
    // vectorized for "heritates its iteration counter that can be saved
    // in a register"), so every loop continuation is computed entirely in
    // the fetch stage.
    long bound = n;
    long last = bound - 1;
    long i;
    for (i = 0; i < bound; i = i + 1) {
        A[i] = i * 7 %% 31;
    }
    // A 3-point stencil: every iteration body is independent, the classic
    // "for loop vectorization" target.
    for (i = 1; i < last; i = i + 1) {
        B[i] = (A[i - 1] + 2 * A[i] + A[i + 1]) / 4;
    }
    long s = 0;
    for (i = 0; i < bound; i = i + 1) {
        s = s + B[i];
    }
    out(s);
    return 0;
}
""".replace("%%", "%")


def main() -> None:
    seq = run_sequential(compile_source(SOURCE))
    print("sequential      : %6d instructions, checksum %d"
          % (seq.steps, seq.signed_output[0]))

    looped = compile_source(SOURCE, fork_mode=True, fork_loops=True)
    forked, machine = run_forked(looped)
    assert forked.output == seq.output
    print("loop-forked     : %6d instructions, %d sections"
          % (forked.steps, len(machine.section_table())))

    for cores in (1, 4, 16, 64):
        # Loop bookkeeping lives in the stack frame, so the paper's stack
        # shortcut is essential for the continuation chain to flow.
        result, _ = simulate(looped, SimConfig(n_cores=cores,
                                               stack_shortcut=True))
        assert result.outputs == seq.output
        print("  %3d cores: fetch %5d cycles (%.2f IPC), retire %5d cycles"
              % (cores, result.fetch_end, result.fetch_ipc,
                 result.retire_end))
    print("\nEach iteration body became a section: fetch parallelism grows")
    print("with cores until the loop-bookkeeping chain dominates.")


if __name__ == "__main__":
    main()
