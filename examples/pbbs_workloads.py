#!/usr/bin/env python3
"""Tour of the Table 1 benchmark suite.

Builds every PBBS workload at a small scale, checks the compiled MiniC
program against its Python oracle, and prints trace statistics (the raw
material of Figure 7).

    python examples/pbbs_workloads.py [scale]
"""

import sys

from repro.workloads import WORKLOADS


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("%-3s %-36s %6s %9s %7s %7s %7s" % (
        "id", "benchmark", "n", "instrs", "mem%", "stack%", "branch%"))
    for workload in WORKLOADS:
        inst = workload.instance(scale=scale, seed=1)
        inst.verify()
        result = inst.run(record_trace=True)
        trace = result.trace
        steps = len(trace)
        print("%-3s %-36s %6d %9d %6.1f%% %6.1f%% %6.1f%%" % (
            workload.key, workload.name, inst.n, steps,
            100.0 * trace.memory_ops() / steps,
            100.0 * trace.stack_ops() / steps,
            100.0 * trace.branches() / steps))
    print("\nAll ten compiled programs matched their Python oracles.")
    print("Note the stack traffic share — the serialization the paper's")
    print("Section 3 identifies as a main obstacle to ILP capture.")


if __name__ == "__main__":
    main()
