#!/usr/bin/env python3
"""The paper's thesis on a user program: run an *unchanged* C program in
parallel.

Takes a MiniC divide-and-conquer program (the kind of code Figure 1a
motivates), compiles it three ways —

1. classic call/ret code (Figure 2 style), run sequentially,
2. the same source in fork mode (Figure 5 style), run on the section
   machine,
3. the *compiled sequential binary* rewritten by the automatic call→fork
   transformation (no source change at all), simulated on a many-core —

and reports the fetch/retire parallelism the distributed design extracts.

    python examples/parallelize_c_program.py
"""

from repro import fork_transform, run_forked, run_sequential, simulate, SimConfig
from repro.minic import compile_source

SOURCE = """
// Polynomial evaluation over a segment tree: sums A[i] * i^2 recursively,
// written exactly as a C programmer would for a sequential machine.
long A[64] = {
     3, 14, 15, 92, 65, 35, 89, 79, 32, 38, 46, 26, 43, 38, 32, 79,
    50, 28, 84, 19, 71, 69, 39, 93, 75, 10, 58, 20, 97, 49, 44, 59,
    23,  7, 81, 64,  6, 28, 62,  8, 99, 86, 28,  3, 48, 25, 34, 21,
    17,  6, 79, 82, 14, 80, 86, 51, 32, 82, 30, 66, 47, 9, 38, 44
};

long weighted(long lo, long hi) {
    if (hi - lo == 1) return A[lo] * lo * lo;
    long mid = lo + (hi - lo) / 2;
    return weighted(lo, mid) + weighted(mid, hi);
}

long main() {
    out(weighted(0, 64));
    return 0;
}
"""


def main() -> None:
    # 1. ordinary sequential compilation and run
    seq_prog = compile_source(SOURCE)
    seq = run_sequential(seq_prog)
    print("sequential binary : %6d instructions, result %d"
          % (seq.steps, seq.signed_output[0]))

    # 2. fork-mode compilation (the compiler emits fork/endfork directly)
    fork_prog = compile_source(SOURCE, fork_mode=True)
    forked, machine = run_forked(fork_prog)
    assert forked.output == seq.output
    print("fork-mode binary  : %6d instructions, %d sections"
          % (forked.steps, len(machine.section_table())))

    # 3. no recompilation: transform the sequential *binary* (Fig. 2→Fig. 5).
    # Compiled code branches on stack-frame variables, so the paper's stack
    # shortcut (Section 4.2 statement ii) is what keeps fetch flowing.
    transformed = fork_transform(seq_prog)
    config = SimConfig(n_cores=32, stack_shortcut=True)
    result, proc = simulate(transformed, config)
    assert result.outputs == seq.output
    print("binary transform  : %s" % result.describe())

    one_core, _ = simulate(transformed,
                           SimConfig(n_cores=1, stack_shortcut=True))
    print("\nfetch speedup over one simulated core: %.1fx"
          % (one_core.fetch_end / result.fetch_end))
    print("sections were placed on %d cores"
          % sum(1 for c in proc.cores if c.fetched))


if __name__ == "__main__":
    main()
