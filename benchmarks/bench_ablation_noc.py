"""A4 — ablation: communication-latency sensitivity.

The paper fixes small constants (2-cycle section creation, 3-cycle
renaming round trip).  This ablation sweeps the NoC hop latency and the
section-creation latency, plus the two mechanisms that hide them (the
stack shortcut of statement ii and the line-grained DMH replies of
footnote 5), on the forked sum.
"""

from _common import BENCH_SCALE, emit, run_sim_batch, table

from repro.paper import paper_array, sum_forked_program
from repro.runner import Job
from repro.sim import SimConfig


def _sweep():
    n = 80 << BENCH_SCALE
    prog = sum_forked_program(paper_array(n))
    cases = []

    def case(tag, **kwargs):
        defaults = dict(n_cores=32, stack_shortcut=True)
        defaults.update(kwargs)
        cases.append((tag, SimConfig(**defaults)))

    for noc in (1, 2, 4, 8):
        case("noc=%d" % noc, noc_latency=noc)
    for create in (1, 2, 4, 8):
        case("create=%d" % create, section_create_latency=create)
    case("no-shortcut", stack_shortcut=False)
    case("line=8B (word grain)", line_bytes=8)
    case("line=128B", line_bytes=128)
    for hop in (1, 2):
        case("mesh hop=%d (6x6)" % hop, topology="mesh", n_cores=36,
             noc_latency=hop)

    payloads, _ = run_sim_batch(
        [Job.from_program(prog, config=config, job_id="a4:%s" % tag)
         for tag, config in cases])
    rows, results = [], {}
    for (tag, _), payload in zip(cases, payloads):
        assert payload["outputs"] == [n * (n + 1) // 2]
        rows.append([tag, payload["fetch_end"],
                     "%.2f" % payload["fetch_ipc"], payload["retire_end"],
                     "%.2f" % payload["retire_ipc"]])
        results[tag] = payload
    return rows, results


def bench_ablation_noc(benchmark):
    rows, results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Ablation A4 — communication latency sensitivity (forked sum)",
        ["configuration", "fetch cy", "fetch IPC", "retire cy",
         "retire IPC"], rows)
    emit("ablation_noc", text)
    assert results["noc=1"]["retire_end"] <= results["noc=8"]["retire_end"]
    assert (results["create=1"]["fetch_end"]
            <= results["create=8"]["fetch_end"])
    # the shortcut and line replies both pull retirement in
    assert (results["noc=1"]["retire_end"]
            <= results["no-shortcut"]["retire_end"])
