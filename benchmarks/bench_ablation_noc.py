"""A4 — ablation: communication-latency sensitivity.

The paper fixes small constants (2-cycle section creation, 3-cycle
renaming round trip).  This ablation sweeps the NoC hop latency and the
section-creation latency, plus the two mechanisms that hide them (the
stack shortcut of statement ii and the line-grained DMH replies of
footnote 5), on the forked sum.
"""

from _common import BENCH_SCALE, emit, table

from repro.paper import paper_array, sum_forked_program
from repro.sim import SimConfig, simulate


def _sweep():
    n = 80 << BENCH_SCALE
    prog = sum_forked_program(paper_array(n))
    rows = []
    results = {}

    def run(tag, **kwargs):
        defaults = dict(n_cores=32, stack_shortcut=True)
        defaults.update(kwargs)
        result, _ = simulate(prog, SimConfig(**defaults))
        assert result.signed_outputs == [n * (n + 1) // 2]
        rows.append([tag, result.fetch_end, "%.2f" % result.fetch_ipc,
                     result.retire_end, "%.2f" % result.retire_ipc])
        results[tag] = result

    for noc in (1, 2, 4, 8):
        run("noc=%d" % noc, noc_latency=noc)
    for create in (1, 2, 4, 8):
        run("create=%d" % create, section_create_latency=create)
    run("no-shortcut", stack_shortcut=False)
    run("line=8B (word grain)", line_bytes=8)
    run("line=128B", line_bytes=128)
    for hop in (1, 2):
        run("mesh hop=%d (6x6)" % hop, topology="mesh", n_cores=36,
            noc_latency=hop)
    return rows, results


def bench_ablation_noc(benchmark):
    rows, results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Ablation A4 — communication latency sensitivity (forked sum)",
        ["configuration", "fetch cy", "fetch IPC", "retire cy",
         "retire IPC"], rows)
    emit("ablation_noc", text)
    assert results["noc=1"].retire_end <= results["noc=8"].retire_end
    assert results["create=1"].fetch_end <= results["create=8"].fetch_end
    # the shortcut and line replies both pull retirement in
    assert results["noc=1"].retire_end <= results["no-shortcut"].retire_end
