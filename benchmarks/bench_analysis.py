"""Static analysis over the Table 1 suite: linter + differential validation.

Regenerates the fork-hazard lint summary and the static-vs-dynamic
soundness/precision table for all ten workloads, plus the analysis
throughput (CFG + liveness + reaching defs + lint per program).
"""

import time

from _common import emit, emit_json, table

from repro.analysis import lint_program, validate_machine, validate_sim
from repro.minic import compile_source
from repro.workloads import WORKLOADS

SIM_VALIDATED = ("bfs", "quicksort", "dictionary")


def _analyse_all():
    rows = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=0)
        prog = compile_source(inst.source, fork_mode=True)
        t0 = time.perf_counter()
        report = lint_program(prog)
        lint_ms = 1e3 * (time.perf_counter() - t0)
        mreport = validate_machine(prog)
        sreport = (validate_sim(prog)
                   if workload.short in SIM_VALIDATED else None)
        rows.append((workload, prog, report, mreport, sreport, lint_ms))
    return rows


def bench_analysis(benchmark):
    rows = benchmark.pedantic(_analyse_all, rounds=1, iterations=1)
    out = []
    payload = {}
    for workload, prog, report, mreport, sreport, lint_ms in rows:
        mhit, mtotal = mreport.precision()
        if sreport is not None:
            shit, stotal = sreport.precision()
            sim_col = "%s %d/%d" % (
                "sound" if sreport.sound else "UNSOUND", shit, stotal)
        else:
            sim_col = "-"
        out.append([
            workload.short, len(prog.code), len(report.cfg.fork_sites),
            len(report.errors), len(report.warnings), len(report.infos),
            "%s %d/%d" % ("sound" if mreport.sound else "UNSOUND",
                          mhit, mtotal),
            sim_col, "%.1f" % lint_ms,
        ])
        payload[workload.short] = {
            "instructions": len(prog.code),
            "fork_sites": len(report.cfg.fork_sites),
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "infos": len(report.infos),
            "machine_sound": mreport.sound,
            "machine_precision": [mhit, mtotal],
            "sim_sound": None if sreport is None else sreport.sound,
            "lint_ms": round(lint_ms, 2),
        }
    text = table(
        "Static analysis — fork-hazard lint + differential validation "
        "(ten workloads, scale 0)",
        ["workload", "instrs", "forks", "err", "warn", "info",
         "machine", "sim", "lint ms"],
        out)
    emit("analysis_lint", text)
    emit_json("analysis_lint", payload)
    assert all(r[3] == 0 and r[4] == 0 for r in out)   # zero failing findings
    assert all(row[3] is not False for row in out)
    for _, _, report, mreport, sreport, _ in rows:
        assert mreport.sound
        assert sreport is None or sreport.sound
