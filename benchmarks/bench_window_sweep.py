"""A8 — ablation: instruction-window sweep (the classic Wall curve).

Section 3's historical arc — Tjaden & Flynn's 10-instruction window
(≈1.86 IPC) through Wall's 2K window (≈5) to Cristal et al.'s
kilo-instruction argument — reproduced as ILP vs window size on our
traces, with the paper's parallel model as the horizon the window never
reaches (claim: the ILP is too distant for any window; you need multiple
instruction pointers).
"""

from _common import BENCH_SCALE, emit, table

from repro.ilp import PARALLEL_MODEL, SEQUENTIAL_MODEL
from repro.ilp.analyzer import analyze_stream_multi
from repro.workloads import get_workload

WINDOWS = [8, 32, 128, 512, 2048, 8192]
WORKLOADS = ["bfs", "quicksort", "radixsort", "knn"]


def _models():
    models = [SEQUENTIAL_MODEL.derive(
        "w%d" % window, control_dependencies=True,
        branch_predictor="twobit", window_size=window, issue_width=64,
        rename_memory=True)
        for window in WINDOWS]
    return models + [PARALLEL_MODEL]


def _sweep():
    models = _models()
    rows = []
    curves = []
    for name in WORKLOADS:
        inst = get_workload(name).instance(scale=2 + BENCH_SCALE, seed=1)
        results = analyze_stream_multi(inst.trace_entries(), models)
        rows.append([name, inst.n] + ["%.2f" % r.ilp for r in results])
        curves.append([r.ilp for r in results])
    return rows, curves


def bench_window_sweep(benchmark):
    rows, curves = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Ablation A8 — ILP vs instruction window (64-wide, 2-bit "
        "predictor, renamed memory) vs the parallel model",
        ["benchmark", "n"] + ["w=%d" % w for w in WINDOWS] + ["parallel"],
        rows)
    text += ("\n\nGrowing the window saturates quickly; the parallel "
             "model's distant ILP stays out of reach\n— the paper's case "
             "for distributing fetch instead of enlarging the window.")
    emit("window_sweep", text)
    for curve in curves:
        windowed, parallel = curve[:-1], curve[-1]
        # monotone in the window, with early saturation
        for small, big in zip(windowed, windowed[1:]):
            assert big >= small * 0.999
        assert windowed[-1] <= windowed[2] * 2.0     # saturated by w=128
        assert parallel > 3 * windowed[-1]
