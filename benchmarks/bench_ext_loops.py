"""A5 — extension: loop parallelization (paper Section 5 future work).

"For loops can be vectorized, each iteration forming a separate section
... It heritates its iteration counter that can be saved in a register."

Compares three compilations of the same loop program on the simulator:

* sequential (one section),
* fork_loops with memory-carried loop bookkeeping,
* fork_loops with the register-carried counter (the paper's sketch),

and sweeps core counts for the register-carried variant.
"""

from _common import BENCH_SCALE, emit, table

from repro.machine import run_sequential
from repro.minic import compile_source
from repro.sim import SimConfig, simulate

N = 96 << BENCH_SCALE

# The canonical induction form (i < local bound) enables register carrying;
# the i + 1 < n form falls back to memory-carried forking.
SRC_REGISTER = """
long A[%(n)d];
long B[%(n)d];
long main() {
    long i;
    for (i = 0; i < %(n)d; i = i + 1) A[i] = i * 13 %%%% 29;
    for (i = 0; i < %(n)d; i = i + 1) B[i] = A[i] * A[i] + 1;
    long s = 0;
    for (i = 0; i < %(n)d; i = i + 1) s = s + B[i];
    out(s);
    return 0;
}
""" % {"n": N}
SRC_REGISTER = SRC_REGISTER.replace("%%", "%")

SRC_MEMORY = SRC_REGISTER.replace("i < %d" % N, "i + 0 < %d" % N)


def _sweep():
    rows = []
    seq_prog = compile_source(SRC_REGISTER)
    expected = run_sequential(seq_prog).output

    plain, _ = simulate(seq_prog, SimConfig(n_cores=1, stack_shortcut=True))
    assert plain.outputs == expected
    rows.append(["sequential", 1, plain.instructions, plain.fetch_end,
                 "%.2f" % plain.fetch_ipc, plain.retire_end])

    memory_prog = compile_source(SRC_MEMORY, fork_mode=True, fork_loops=True)
    reg_prog = compile_source(SRC_REGISTER, fork_mode=True, fork_loops=True)
    mem_result, _ = simulate(memory_prog,
                             SimConfig(n_cores=16, stack_shortcut=True))
    assert mem_result.outputs == expected
    rows.append(["forked loops (memory-carried)", 16,
                 mem_result.instructions, mem_result.fetch_end,
                 "%.2f" % mem_result.fetch_ipc, mem_result.retire_end])

    reg_results = {}
    for cores in (1, 4, 16, 64):
        result, _ = simulate(reg_prog,
                             SimConfig(n_cores=cores, stack_shortcut=True))
        assert result.outputs == expected
        reg_results[cores] = result
        rows.append(["forked loops (register counter)", cores,
                     result.instructions, result.fetch_end,
                     "%.2f" % result.fetch_ipc, result.retire_end])
    return rows, plain, mem_result, reg_results


def bench_ext_loops(benchmark):
    rows, plain, mem_result, reg_results = benchmark.pedantic(
        _sweep, rounds=1, iterations=1)
    text = table(
        "Extension A5 — loop parallelization (Section 5 future work)",
        ["compilation", "cores", "instrs", "fetch cy", "fetch IPC",
         "retire cy"], rows)
    emit("ext_loops", text)
    # register-carried launching beats memory-carried launching
    assert reg_results[16].fetch_end < mem_result.fetch_end
    # and parallel loop sections beat the single-section run
    assert reg_results[16].fetch_end < plain.fetch_end / 1.5
    assert reg_results[64].fetch_end <= reg_results[1].fetch_end