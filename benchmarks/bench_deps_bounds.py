"""Static speedup bounds vs. measured speedups over the Table 1 suite.

Regenerates the ``repro deps`` prediction for every workload — section
dependence graph size, critical path, the analytic bound at 64 and 256
cores — alongside the simulator's measured speedup at 64 cores, plus the
query latency of the bound itself (the DSE-layer claim: an analytic
number in microseconds instead of a simulation in seconds).

Soundness is asserted, not just recorded: ``bound(N) >= measured(N)``
for every workload at both core counts, and every dependence the
simulator observes must be covered by a static edge.
"""

import time

from _common import emit, emit_json, table

from repro.analysis import analyze_program, validate_deps
from repro.minic import compile_source
from repro.sim import SimConfig, simulate
from repro.workloads import WORKLOADS

CORE_COUNTS = (64, 256)


def _analyse_all():
    rows = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=0)
        prog = compile_source(inst.source, fork_mode=True)
        t0 = time.perf_counter()
        graph, bound = analyze_program(prog)
        analyze_ms = 1e3 * (time.perf_counter() - t0)
        # the query itself (what the DSE layer pays per design point)
        t0 = time.perf_counter()
        for _ in range(1000):
            bound.bound(64)
        query_us = 1e3 * (time.perf_counter() - t0)
        report = validate_deps(prog, graph=graph)
        measured = {}
        for n_cores in CORE_COUNTS:
            result, _ = simulate(prog, SimConfig(n_cores=n_cores))
            measured[n_cores] = result.instructions / result.cycles
        rows.append((workload, graph, bound, report, measured,
                     analyze_ms, query_us))
    return rows


def bench_deps_bounds(benchmark):
    rows = benchmark.pedantic(_analyse_all, rounds=1, iterations=1)
    out = []
    payload = {}
    for workload, graph, bound, report, measured, analyze_ms, q_us in rows:
        hit, total = report.precision()
        out.append([
            workload.short, len(graph.nodes), len(graph.edges),
            bound.t1, bound.l_max, bound.sections,
            "%.2f" % bound.bound(64), "%.2f" % measured[64],
            "%.2f" % bound.bound(256), "%.2f" % measured[256],
            "%s %d/%d" % ("sound" if report.sound else "UNSOUND",
                          hit, total),
            "%.1f" % analyze_ms, "%.2f" % q_us,
        ])
        payload[workload.short] = {
            "nodes": len(graph.nodes),
            "edges": len(graph.edges),
            "t1": bound.t1,
            "l_max": bound.l_max,
            "sections": bound.sections,
            "critical_path_weight": graph.critical_path_weight(),
            "bound": {str(n): round(bound.bound(n), 4)
                      for n in CORE_COUNTS},
            "measured": {str(n): round(measured[n], 4)
                         for n in CORE_COUNTS},
            "deps_sound": report.sound,
            "deps_precision": [hit, total],
            "analyze_ms": round(analyze_ms, 2),
            "bound_query_us": round(q_us, 3),
        }
    text = table(
        "Static speedup bounds — section dependence graph vs. measured "
        "(ten workloads, scale 0)",
        ["workload", "nodes", "edges", "T1", "Lmax", "secs",
         "bnd64", "mea64", "bnd256", "mea256", "deps", "ms", "q us"],
        out)
    emit("deps_bounds", text)
    emit_json("deps_bounds", payload)
    for workload, graph, bound, report, measured, _, _ in rows:
        assert report.sound, workload.short
        for n_cores in CORE_COUNTS:
            assert bound.bound(n_cores) >= measured[n_cores], (
                workload.short, n_cores)
