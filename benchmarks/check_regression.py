"""Benchmark regression gate: fresh runs vs the committed baselines.

Re-runs the workloads behind the committed ``BENCH_*.json`` baselines
(``benchmarks/results/``) and fails when a fresh run drifts:

* **deterministic fields** (simulated cycles, instruction/section/request
  counts, fetch endpoints) must match the baseline *exactly* — the
  simulator is deterministic, so any difference is a behaviour change
  that must be re-baselined deliberately (rerun the benchmark suite and
  commit the new JSON);
* **wall clock** of the event-driven scheduler (events off — the
  production configuration) may regress at most ``--tolerance`` (default
  5%) against the baseline.  Machines and load differ, so the gate
  compares the *event/naive speedup* rather than raw seconds: each round
  times the naive and event schedulers back-to-back (so transient load
  hits both alike), and the best round's speedup must stay within
  tolerance of the baseline speedup.  A slower event path shows up
  directly as a lower speedup, while a slower *machine* cancels out;
* **the vector kernel** (``BENCH_vector_kernel.json``) is held to the
  same ratio discipline on a three-workload subset at 256 cores, plus an
  absolute requirement that the committed full-suite aggregate stays at
  >= 10x over the naive loop.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--full]
        [--tolerance 0.05] [--update]

``--full`` additionally replays the (slower) Table 1 sweep behind
``BENCH_workloads_on_sim.json``; ``--update`` rewrites the baselines in
place instead of failing (the deliberate re-baseline path).

Every gating run (pass or fail, but not ``--update``) also appends one
normalized row — speedups, cycle totals, cache hit rate, host-metrics
digest — to ``benchmarks/results/TRAJECTORY.jsonl`` via
:mod:`trajectory`, building a machine-readable perf history of the repo.
``--no-trajectory`` opts out.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import RESULTS_DIR  # noqa: E402

from repro.fork import fork_transform                      # noqa: E402
from repro.sim import SimConfig, simulate                  # noqa: E402
from repro.workloads import WORKLOADS, get_workload        # noqa: E402

#: the fast-path timing matrix (must mirror bench_workloads_on_sim.py at
#: REPRO_BENCH_SCALE=0)
FAST_PATH_CASES = [("quicksort", 12), ("dictionary", 12), ("bfs", 8)]

#: subset of the Table 1 suite the vector-kernel gate re-times (the full
#: suite behind BENCH_vector_kernel.json takes minutes; these three keep
#: the gate fast while still catching a vector-kernel slowdown).  Must
#: mirror bench_vector_kernel.py workload naming at REPRO_BENCH_SCALE=0.
VECTOR_KERNEL_CASES = ("dictionary", "mis", "dedup")
#: chip size of the vector-kernel benchmark (mirror bench_vector_kernel)
VECTOR_KERNEL_CORES = 256

#: BENCH_*.json artifacts the gate checks (deterministic baselines)
GATED_BASELINES = ("scheduler_fast_path", "workloads_on_sim",
                   "vector_kernel", "deps_bounds", "serve",
                   "snapshot_warmstart")
#: BENCH_*.json artifacts the gate deliberately ignores: these record
#: *degradation* measurements (fault-injection sweeps, lint censuses)
#: whose drift is an observation, not a regression — the invariants they
#: do carry (bit-identical architectural results under faults) are
#: asserted by their own benchmark/test harnesses instead
IGNORED_ARTIFACTS = ("faults_sweep", "analysis_lint")


class Gate:
    """Collects pass/fail lines; the process exits 1 on any failure."""

    def __init__(self):
        self.failures = []

    def check(self, ok: bool, message: str) -> None:
        print("  %s %s" % ("ok  " if ok else "FAIL", message))
        if not ok:
            self.failures.append(message)

    def exact(self, name: str, fresh, baseline) -> None:
        self.check(fresh == baseline,
                   "%s: fresh=%r baseline=%r" % (name, fresh, baseline))


def _load(name: str) -> dict:
    path = RESULTS_DIR / ("BENCH_%s.json" % name)
    if not path.exists():
        print("error: missing baseline %s — run the benchmark suite first"
              % path, file=sys.stderr)
        sys.exit(2)
    return json.loads(path.read_text())


def _save(name: str, payload: dict) -> None:
    path = RESULTS_DIR / ("BENCH_%s.json" % name)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("  [baseline %s updated]" % path.name)


def run_fast_path(rounds: int = 3) -> dict:
    """Fresh timings of the naive-vs-event matrix, events off.

    Each round times every workload under both schedulers back-to-back,
    so a load spike inflates the round's naive and event walls together
    and the per-round speedup stays honest.  The reported walls are the
    per-mode minima (the noise-free cost estimate) and the reported
    ``aggregate_speedup`` is the best round's — the statistic the gate
    compares."""
    cases = []
    for short, n in FAST_PATH_CASES:
        inst = get_workload(short).instance(n=n, seed=1)
        cases.append((short, inst.n, fork_transform(inst.program)))

    round_walls = []                    # [{mode: {short: wall}}, ...]
    cycles = {}
    for _ in range(rounds):
        walls = {"naive": {}, "event": {}}
        for short, n, prog in cases:
            for mode in ("naive", "event"):
                config = SimConfig(n_cores=64, stack_shortcut=True,
                                   kernel=mode)
                start = time.perf_counter()
                result, _ = simulate(prog, config)
                walls[mode][short] = time.perf_counter() - start
                cycles[short] = result.cycles
        round_walls.append(walls)

    records = []
    for short, n, _ in cases:
        records.append({
            "benchmark": short, "n": n, "cycles": cycles[short],
            "wall_naive_s": min(w["naive"][short] for w in round_walls),
            "wall_event_s": min(w["event"][short] for w in round_walls),
            "speedup": max(w["naive"][short] / w["event"][short]
                           for w in round_walls),
        })
    round_speedups = [sum(w["naive"].values()) / sum(w["event"].values())
                      for w in round_walls]
    return {"n_cores": 64, "scale": 0, "workloads": records,
            "wall_naive_s": sum(r["wall_naive_s"] for r in records),
            "wall_event_s": sum(r["wall_event_s"] for r in records),
            "aggregate_speedup": max(round_speedups),
            #: worst observed round — the conservative floor the gate
            #: compares future runs against
            "floor_speedup": min(round_speedups)}


def check_fast_path(gate: Gate, tolerance: float, update: bool) -> dict:
    """Gate the fast-path matrix; returns the fresh measurement dict so
    main() can fold it into the trajectory row."""
    print("fast path (BENCH_scheduler_fast_path.json):")
    baseline = _load("scheduler_fast_path")
    fresh = run_fast_path()
    if update:
        _save("scheduler_fast_path", fresh)
        return fresh
    base_by_name = {r["benchmark"]: r for r in baseline["workloads"]}
    for record in fresh["workloads"]:
        base = base_by_name.get(record["benchmark"])
        if base is None:
            gate.check(False, "%s: no baseline record"
                       % record["benchmark"])
            continue
        gate.exact("%s cycles" % record["benchmark"],
                   record["cycles"], base["cycles"])
        gate.exact("%s n" % record["benchmark"], record["n"], base["n"])
    # speedup gate: a slower event path lowers the fresh speedup; a
    # slower machine cancels out of the naive/event ratio.  The fresh
    # *best* round is held against the baseline's *worst* round (its
    # floor) so residual round-to-round jitter — which moves both
    # statistics by a few percent — cannot trip the gate, while a real
    # fast-path regression (every round slower) still does.
    floor = baseline.get("floor_speedup", baseline["aggregate_speedup"])
    required = floor / (1.0 + tolerance)
    gate.check(
        fresh["aggregate_speedup"] >= required,
        "event/naive speedup %.2fx >= %.2fx "
        "(baseline floor %.2fx within %.0f%% tolerance)"
        % (fresh["aggregate_speedup"], required, floor, 100 * tolerance))
    return fresh


def run_vector_kernel(rounds: int = 2) -> dict:
    """Fresh naive-vs-vector timings of the gate subset at 256 cores.

    Same statistics discipline as :func:`run_fast_path`: each round
    times both kernels back-to-back per workload so load spikes cancel
    out of the ratio, and the gate compares the best round's aggregate
    against the baseline floor."""
    cases = []
    for short in VECTOR_KERNEL_CASES:
        inst = get_workload(short).instance(scale=0, seed=1)
        cases.append((short, inst.n, fork_transform(inst.program)))

    round_walls = []                    # [{kernel: {short: wall}}, ...]
    cycles = {}
    for _ in range(rounds):
        walls = {"naive": {}, "vector": {}}
        for short, n, prog in cases:
            results = {}
            for kernel in ("naive", "vector"):
                config = SimConfig(n_cores=VECTOR_KERNEL_CORES,
                                   kernel=kernel)
                # keep the previous run's cyclic garbage out of the
                # timed region (same discipline as bench_vector_kernel)
                gc.collect()
                start = time.perf_counter()
                result, _ = simulate(prog, config)
                walls[kernel][short] = time.perf_counter() - start
                results[kernel] = result
                cycles[short] = result.cycles
            # timing is only meaningful if behaviour stayed identical
            assert (results["naive"].cycles, results["naive"].outputs) \
                == (results["vector"].cycles, results["vector"].outputs), \
                "vector kernel diverged on %s" % short
        round_walls.append(walls)

    round_speedups = [sum(w["naive"].values()) / sum(w["vector"].values())
                      for w in round_walls]
    return {"n_cores": VECTOR_KERNEL_CORES,
            "workloads": [{"benchmark": short, "n": n,
                           "cycles": cycles[short]}
                          for short, n, _ in cases],
            "aggregate_speedup": max(round_speedups),
            "floor_speedup": min(round_speedups)}


def check_vector_kernel(gate: Gate, tolerance: float, update: bool) -> dict:
    """Gate the vector kernel; returns the fresh measurement dict so
    main() can fold it into the trajectory row."""
    print("vector kernel (BENCH_vector_kernel.json):")
    baseline = _load("vector_kernel")
    # the ISSUE-level contract on the committed artifact: the full
    # Table 1 suite must show >= 10x over the naive loop at 256 cores
    gate.check(baseline["aggregate_speedup"] >= 10.0,
               "committed vector-kernel aggregate %.2fx >= 10.00x "
               "(full Table 1 suite at %d cores)"
               % (baseline["aggregate_speedup"], baseline["n_cores"]))
    fresh = run_vector_kernel()
    if update:
        # the full-suite records come from bench_vector_kernel.py; the
        # gate only maintains its own subset timing floor alongside them
        baseline["gate"] = {
            "cases": list(VECTOR_KERNEL_CASES),
            "aggregate_speedup": fresh["aggregate_speedup"],
            "floor_speedup": fresh["floor_speedup"],
        }
        _save("vector_kernel", baseline)
        return fresh
    base_by_name = {r["benchmark"]: r for r in baseline["workloads"]}
    for record in fresh["workloads"]:
        base = base_by_name.get(record["benchmark"])
        if base is None:
            gate.check(False, "%s: no baseline record"
                       % record["benchmark"])
            continue
        gate.exact("%s cycles" % record["benchmark"],
                   record["cycles"], base["cycles"])
        gate.exact("%s n" % record["benchmark"], record["n"], base["n"])
    # subset floor: prefer the gate's own multi-round floor; fall back to
    # the bench's single-round subset ratio for a freshly regenerated
    # baseline that hasn't been through --update yet
    gate_base = baseline.get("gate") or {}
    floor = gate_base.get("floor_speedup")
    if floor is None:
        naive = sum(base_by_name[s]["wall_naive_s"]
                    for s in VECTOR_KERNEL_CASES)
        vector = sum(base_by_name[s]["wall_vector_s"]
                     for s in VECTOR_KERNEL_CASES)
        floor = naive / vector
    required = floor / (1.0 + tolerance)
    gate.check(
        fresh["aggregate_speedup"] >= required,
        "vector/naive subset speedup %.2fx >= %.2fx "
        "(baseline floor %.2fx within %.0f%% tolerance)"
        % (fresh["aggregate_speedup"], required, floor, 100 * tolerance))
    return fresh


def run_workload_sweep(pool_size=None, cache_dir=None) -> dict:
    """The deterministic Table 1 sweep, through the batch engine.

    Unlike the fast-path check (which measures wall clock and must
    execute every simulation), these fields are bit-identical however
    they are produced, so a pool and a result cache are fair game."""
    from repro.runner import Job, ResultCache, run_batch

    jobs, sizes = [], {}
    for workload in WORKLOADS:
        inst = workload.instance(scale=0, seed=1)
        prog = fork_transform(inst.program)
        sizes[workload.short] = inst.n
        for cores in (1, 32):
            jobs.append(Job.from_program(
                prog, config=SimConfig(n_cores=cores, stack_shortcut=True),
                job_id="gate:%s:%d" % (workload.short, cores)))
    cache = ResultCache(cache_dir) if cache_dir else None
    report = run_batch(jobs, pool_size=pool_size, cache=cache)
    if not report.ok:
        worst = report.failures[0]
        print("error: sweep job %s failed: %s"
              % (worst.job_id, worst.error), file=sys.stderr)
        sys.exit(2)
    print("  [engine: %s]" % report.summary())

    by_id = {job.job_id: outcome.payload
             for job, outcome in zip(jobs, report.outcomes)}
    records = []
    for workload in WORKLOADS:
        one = by_id["gate:%s:1" % workload.short]
        many = by_id["gate:%s:32" % workload.short]
        records.append({
            "benchmark": workload.short, "n": sizes[workload.short],
            "instructions": many["instructions"],
            "sections": many["sections"],
            "fetch_end_1": one["fetch_end"],
            "fetch_end_32": many["fetch_end"],
        })
    return {"workloads": records, "report": report}


def check_workload_sweep(gate: Gate, pool_size=None, cache_dir=None):
    """Gate the Table 1 sweep; returns the BatchReport (host-domain
    telemetry + cache stats) for the trajectory row."""
    print("workload sweep (BENCH_workloads_on_sim.json):")
    baseline = _load("workloads_on_sim")
    base_by_name = {r["benchmark"]: r for r in baseline["workloads"]}
    sweep = run_workload_sweep(pool_size=pool_size, cache_dir=cache_dir)
    for record in sweep["workloads"]:
        base = base_by_name.get(record["benchmark"])
        if base is None:
            gate.check(False, "%s: no baseline record"
                       % record["benchmark"])
            continue
        for key in ("n", "instructions", "sections",
                    "fetch_end_1", "fetch_end_32"):
            gate.exact("%s %s" % (record["benchmark"], key),
                       record[key], base[key])
    return sweep["report"]


#: deterministic fields of each BENCH_deps_bounds.json record the gate
#: recomputes and compares exactly (the analysis is pure static work)
DEPS_STATIC_FIELDS = ("nodes", "edges", "t1", "l_max", "sections",
                      "critical_path_weight", "bound", "deps_sound",
                      "deps_precision")


def run_deps_bounds() -> dict:
    """Fresh static analysis of every workload (no simulation: the
    measured speedups in the baseline are themselves deterministic
    simulator outputs and are covered by the sweep/fast-path gates)."""
    from repro.analysis import analyze_program, validate_deps
    from repro.minic import compile_source

    fresh = {}
    for workload in WORKLOADS:
        # mirror bench_deps_bounds.py exactly: fork-mode compile at scale 0
        inst = workload.instance(scale=0)
        prog = compile_source(inst.source, fork_mode=True)
        graph, bound = analyze_program(prog)
        report = validate_deps(prog, graph=graph)
        hit, total = report.precision()
        fresh[workload.short] = {
            "nodes": len(graph.nodes),
            "edges": len(graph.edges),
            "t1": bound.t1,
            "l_max": bound.l_max,
            "sections": bound.sections,
            "critical_path_weight": graph.critical_path_weight(),
            "bound": {str(n): round(bound.bound(n), 4)
                      for n in (64, 256)},
            "deps_sound": report.sound,
            "deps_precision": [hit, total],
        }
    return fresh


def check_deps_bounds(gate: Gate, update: bool) -> None:
    """Gate the static speedup bounds: every static field must match the
    committed baseline exactly, the committed bound must dominate the
    committed measurement (the soundness contract on the artifact
    itself), and the dependence graph must still validate sound."""
    print("static speedup bounds (BENCH_deps_bounds.json):")
    baseline = _load("deps_bounds")
    fresh = run_deps_bounds()
    if update:
        for short, record in fresh.items():
            baseline.setdefault(short, {}).update(record)
        _save("deps_bounds", baseline)
        return
    for workload in WORKLOADS:
        short = workload.short
        base = baseline.get(short)
        if base is None:
            gate.check(False, "%s: no baseline record" % short)
            continue
        for name in DEPS_STATIC_FIELDS:
            gate.exact("%s %s" % (short, name),
                       fresh[short][name], base.get(name))
        gate.check(fresh[short]["deps_sound"],
                   "%s: dependence graph validates sound" % short)
        for cores, predicted in base["bound"].items():
            measured = base["measured"][cores]
            gate.check(predicted >= measured,
                       "%s: bound(%s) %.2fx >= measured %.2fx"
                       % (short, cores, predicted, measured))


#: deterministic fields of each BENCH_serve.json workload record (wall
#: latencies are environment noise and deliberately not listed)
SERVE_STATIC_FIELDS = ("key", "payload_sha", "n_cores")
#: deterministic fields of the burst record
SERVE_BURST_FIELDS = ("k_identical", "m_distinct", "executions",
                      "coalesced", "jobs")


def check_serve(gate: Gate, update: bool):
    """Gate the serving layer: content addresses and payload digests
    must match the committed baseline exactly (the daemon serves the
    engine's bit-identical payloads or it is broken), and the
    coalesced-burst accounting — executions run, submits coalesced —
    must be the arithmetic the design promises, not a measurement.

    Returns the fresh measurement dict (with wall latencies) so main()
    can fold the serving latencies into the trajectory row."""
    print("serve daemon (BENCH_serve.json):")
    from bench_serve import run_serve_bench
    baseline = _load("serve")
    fresh = run_serve_bench()
    if update:
        _save("serve", fresh)
        return fresh
    base_by_name = {r["benchmark"]: r for r in baseline["workloads"]}
    for record in fresh["workloads"]:
        base = base_by_name.get(record["benchmark"])
        if base is None:
            gate.check(False, "%s: no baseline record"
                       % record["benchmark"])
            continue
        for name in SERVE_STATIC_FIELDS:
            gate.exact("serve %s %s" % (record["benchmark"], name),
                       record[name], base.get(name))
    for name in SERVE_BURST_FIELDS:
        gate.exact("serve burst %s" % name,
                   fresh["burst"][name], baseline["burst"].get(name))
    # the structural invariant, asserted against the formula (not just
    # the baseline): K identical + M distinct -> 1 + M executions on
    # the burst keys, K-1 coalesced attaches
    burst = fresh["burst"]
    gate.check(burst["executions"] == 2 + burst["m_distinct"],
               "serve burst executions %d == blocker + 1 + M (%d)"
               % (burst["executions"], 2 + burst["m_distinct"]))
    gate.check(burst["coalesced"] == burst["k_identical"] - 1,
               "serve burst coalesced %d == K-1 (%d)"
               % (burst["coalesced"], burst["k_identical"] - 1))
    return fresh


#: the cheap identity re-check behind the snapshot warm-start gate: one
#: workload, a 2x2 fault grid (4 forked cells, each verified against its
#: cold replay inside warmstart_sweep itself)
WARMSTART_CHECK = ("quicksort", (0.0, 0.15), (0, 1))
#: the committed artifact's contract (mirrors bench_snapshot_warmstart)
WARMSTART_CELLS = 90
WARMSTART_MIN_SPEEDUP = 3.0


def check_snapshot_warmstart(gate: Gate, update: bool) -> None:
    """Gate the snapshot warm-start artifact: the committed 90-cell E9
    chaos grid forked from one pre-fault snapshot per workload must be
    bit-identical to full replay and beat it by >= 3x wall clock, and a
    small fresh grid must still verify identical (the soundness contract
    is re-executed, not just trusted).  Wall clock of the full grid is
    *not* re-measured here — that is bench_snapshot_warmstart's job; the
    gate holds the committed measurement to the contract."""
    print("snapshot warm-start (BENCH_snapshot_warmstart.json):")
    if update:
        print("  [regenerate via bench_snapshot_warmstart.py, not "
              "--update]")
        return
    baseline = _load("snapshot_warmstart")
    summary = baseline["summary"]
    gate.check(len(baseline["records"]) == WARMSTART_CELLS
               and summary["cells"] == WARMSTART_CELLS,
               "committed grid covers %d cells (%d records)"
               % (WARMSTART_CELLS, len(baseline["records"])))
    gate.check(summary["all_identical"]
               and all(r["identical"] for r in baseline["records"]),
               "every committed warm cell bit-identical to cold replay")
    gate.check(summary["speedup_vs_replay"] >= WARMSTART_MIN_SPEEDUP,
               "warm grid speedup %.2fx >= %.2fx over full replay"
               % (summary["speedup_vs_replay"], WARMSTART_MIN_SPEEDUP))
    from repro.faults import warmstart_sweep
    short, drops, deaths = WARMSTART_CHECK
    fresh = warmstart_sweep([short], drops, deaths, n_cores=16,
                            seed=1234, scale=0, start_frac=0.9)
    gate.check(fresh["summary"]["all_identical"],
               "fresh %d-cell %s warm grid bit-identical to cold replay"
               % (fresh["summary"]["cells"], short))


def check_artifact_census(gate: Gate) -> None:
    """Every committed BENCH_*.json must be either gated or explicitly
    ignored — an unknown artifact means someone added a benchmark without
    deciding whether its drift is a regression."""
    print("artifact census (benchmarks/results/BENCH_*.json):")
    known = set(GATED_BASELINES) | set(IGNORED_ARTIFACTS)
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if name in IGNORED_ARTIFACTS:
            print("  skip %s (degradation artifact, not gated)"
                  % path.name)
            continue
        gate.check(name in known,
                   "%s is neither gated nor listed in IGNORED_ARTIFACTS"
                   % path.name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh benchmark runs drift from the "
                    "committed BENCH_*.json baselines")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed event-mode wall-clock regression "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--full", action="store_true",
                        help="also replay the Table 1 sweep "
                             "(deterministic fields only)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the fast-path baseline instead of "
                             "checking (deliberate re-baseline)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the --full sweep "
                             "(timing checks always run in-process)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="result cache for the --full sweep (timing "
                             "checks never use it)")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip appending a row to "
                             "benchmarks/results/TRAJECTORY.jsonl")
    args = parser.parse_args(argv)

    gate = Gate()
    check_artifact_census(gate)
    check_deps_bounds(gate, args.update)
    fast_path = check_fast_path(gate, args.tolerance, args.update)
    vector = check_vector_kernel(gate, args.tolerance, args.update)
    serve = check_serve(gate, args.update)
    check_snapshot_warmstart(gate, args.update)
    sweep_report = None
    if args.full and not args.update:
        sweep_report = check_workload_sweep(gate, pool_size=args.jobs,
                                            cache_dir=args.cache_dir)
    # record the run in the perf-trajectory history (pass AND fail rows
    # both matter; --update rewrites baselines so its measurements are
    # not comparable and are skipped)
    if not args.update and not args.no_trajectory:
        import trajectory
        row = trajectory.build_row(
            passed=not gate.failures, failures=gate.failures,
            fast_path=fast_path, vector=vector, serve=serve,
            sweep_report=sweep_report, tolerance=args.tolerance)
        path = trajectory.append_row(row)
        print("  [trajectory: row %d appended to %s]"
              % (len(trajectory.load_rows(path)), path.name))
    if gate.failures:
        print("\nregression gate FAILED (%d):" % len(gate.failures))
        for failure in gate.failures:
            print("  - " + failure)
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
