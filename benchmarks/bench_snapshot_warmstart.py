"""E12 — extension: warm-starting the chaos grid from one snapshot.

E9's chaos grid replays each workload's deterministic prefix once per
cell: 9 fault mixes x 10 workloads = 90 simulations from cycle 0, even
though every cell's plan is gated to take effect only in the tail.
``repro.snapshot`` removes that redundancy: capture the fault-free state
once per workload at 90% of the run, then fork every cell off the
restored state (copy-on-write ``os.fork`` cells; a restore-per-cell
fallback keeps non-POSIX hosts working).

The contract is the tentpole's resume-at-k proof applied at grid scale:
each warm cell is also replayed cold from cycle 0 and the two results
must agree on cycles, outputs, final registers, memory digest and fault
counters.  The headline number is ``summary.speedup_vs_replay`` — grid
cold wall over grid warm wall with the per-workload capture + restore
cost charged to the warm side — gated at >= 3x by check_regression.py.
"""

from _common import BENCH_SCALE, emit, emit_json, table

from repro.faults import warmstart_sweep
from repro.workloads import WORKLOADS

DROPS = (0.0, 0.05, 0.15)
DEATH_COUNTS = (0, 1, 2)
START_FRAC = 0.9


def _sweep():
    return warmstart_sweep([w.short for w in WORKLOADS], DROPS,
                           DEATH_COUNTS, n_cores=16, seed=1234,
                           scale=BENCH_SCALE, start_frac=START_FRAC)


def bench_snapshot_warmstart(benchmark):
    payload = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for rec in payload["records"]:
        rows.append([
            rec["benchmark"], "%.2f" % rec["drop_rate"], rec["deaths"],
            rec["base_cycles"], rec["cycles"], "%.2fx" % rec["slowdown"],
            "%.2f" % rec["cold_wall_s"], "%.2f" % rec["warm_wall_s"],
            "%.1fx" % rec["speedup"],
            "yes" if rec["identical"] else "NO",
        ])
    summary = payload["summary"]
    text = table(
        "E12  snapshot warm-start: E9 chaos grid forked from one "
        "pre-fault snapshot per workload, 16 cores, seed %d, "
        "start_frac %.2f" % (payload["seed"], payload["start_frac"]),
        ["benchmark", "drop", "deaths", "base", "cycles", "slowdn",
         "cold_s", "warm_s", "speedup", "identical"],
        rows)
    text += ("\ngrid: %d cells  cold %.1fs  warm %.1fs  capture %.1fs  "
             "snapshots %d bytes  speedup_vs_replay %.2fx\n"
             % (summary["cells"], summary["cold_wall_s"],
                summary["warm_wall_s"], summary["capture_wall_s"],
                summary["snapshot_bytes"],
                summary["speedup_vs_replay"]))
    emit("snapshot_warmstart", text)
    emit_json("snapshot_warmstart", payload)
    assert summary["all_identical"], (
        "a warm-forked cell diverged from its cold replay")
