"""A3 — ablation: section placement policy.

The paper leaves the hosting-core choice "out of the scope of this paper"
(footnote 4); this ablation sweeps the simulator's policies on the forked
sum and a compiled divide-and-conquer program, at several core counts.
"""

from _common import BENCH_SCALE, emit, run_sim_batch, table

from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program
from repro.runner import Job
from repro.sim import SimConfig

POLICIES = ["round_robin", "least_loaded", "random", "same_core"]

DC = """
long A[64];
long f(long lo, long hi) {
    if (hi - lo == 1) return A[lo] * lo + 1;
    long mid = lo + (hi - lo) / 2;
    return f(lo, mid) + f(mid, hi);
}
long main() { out(f(0, 64)); return 0; }
"""


def _programs():
    n = 80 << BENCH_SCALE
    dc = compile_source(DC, fork_mode=True)
    return [
        ("sum(t,%d)" % n, sum_forked_program(paper_array(n))),
        ("minic-d&c", dc),
    ]


def _sweep():
    cases, jobs = [], []
    for name, prog in _programs():
        for cores in (4, 16):
            for policy in POLICIES:
                config = SimConfig(n_cores=cores, placement=policy,
                                   stack_shortcut=True, placement_seed=7)
                cases.append((name, cores, policy))
                jobs.append(Job.from_program(
                    prog, config=config,
                    job_id="a3:%s:%d:%s" % (name, cores, policy)))
    payloads, _ = run_sim_batch(jobs)

    rows, results, reference = [], {}, {}
    for (name, cores, policy), payload in zip(cases, payloads):
        assert payload["outputs"] == reference.setdefault(
            name, payload["outputs"])
        rows.append([name, cores, policy, payload["fetch_end"],
                     "%.2f" % payload["fetch_ipc"], payload["retire_end"]])
        results[(name, cores, policy)] = payload
    return rows, results


def bench_ablation_placement(benchmark):
    rows, results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Ablation A3 — section placement policies (paper footnote 4)",
        ["program", "cores", "policy", "fetch cy", "fetch IPC", "retire cy"],
        rows)
    emit("ablation_placement", text)
    # same_core wastes the machine: distributing policies must fetch faster
    for name, _prog in _programs():
        solo = results[(name, 16, "same_core")]
        spread = results[(name, 16, "round_robin")]
        assert spread["fetch_end"] < solo["fetch_end"]
