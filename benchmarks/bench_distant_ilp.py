"""A6 — Section 3, claim ii: "most of [the ILP] comes from very distant
instructions" (Austin & Sohi's observation, the paper's motivation for
multiple instruction pointers).

For each workload, schedules the trace under both Figure 7 models while
recording the trace distance between every instruction and its *critical*
producer, bucketed by powers of two.  The claim to reproduce: under the
parallel model a large share of critical producers are far away (beyond
any realistic instruction window), while a finite window by construction
only sees the near ones.
"""

from _common import BENCH_SCALE, emit, table

from repro.ilp import PARALLEL_MODEL, SEQUENTIAL_MODEL
from repro.ilp.analyzer import analyze_stream_multi
from repro.workloads import get_workload

WORKLOADS = ["bfs", "quicksort", "mis", "knn", "dedup"]
WINDOW = 2048          # Wall's "good" window: the distant/near boundary


def _share_beyond(hist, boundary):
    total = sum(hist)
    if not total:
        return 0.0
    far = sum(count for bucket, count in enumerate(hist)
              if 2 ** bucket >= boundary)
    return far / total


def _sweep():
    rows = []
    shares = []
    for name in WORKLOADS:
        inst = get_workload(name).instance(scale=3 + BENCH_SCALE, seed=1)
        seq, par = analyze_stream_multi(
            inst.trace_entries(), [SEQUENTIAL_MODEL, PARALLEL_MODEL],
            track_distance=True)
        seq_share = _share_beyond(seq.critical_distance_hist, WINDOW)
        par_share = _share_beyond(par.critical_distance_hist, WINDOW)
        rows.append([name, inst.n, par.instructions,
                     "%.1f%%" % (100 * seq_share),
                     "%.1f%%" % (100 * par_share),
                     "%.1f" % par.ilp])
        shares.append((name, seq_share, par_share))
    return rows, shares


def bench_distant_ilp(benchmark):
    rows, shares = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Section 3 claim ii — share of critical producers more than %d "
        "instructions away" % WINDOW,
        ["benchmark", "n", "instrs", "seq model", "parallel model",
         "par ILP"],
        rows)
    text += ("\n\nILP is arbitrarily distant from the instruction pointer: "
             "a %d-entry window cannot see these producers;\nthe paper's "
             "distributed sections can." % WINDOW)
    emit("distant_ilp", text)
    # The parallel model exposes distant producers the sequential model's
    # chains hide entirely; the share grows with trace size (try
    # REPRO_BENCH_SCALE=2).
    for name, seq_share, par_share in shares:
        assert par_share >= seq_share, name
    assert sum(1 for _, _, par in shares if par > 0.005) >= 3
