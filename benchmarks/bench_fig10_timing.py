"""E5 — Figure 10: execution timing of the sum(t,5) run on five cores.

Simulates the paper's exact scenario — the Figure 5 code entered at
``sum`` with rdi=&t, rsi=5, five cores, one section each, unit-width
stages — and regenerates the per-instruction stage-timing tables.

Fidelity anchors from the paper's prose:

* instruction 1-8: fd 8, rr 9, ew 10, ar 11, ma 14, ret 15  (exact);
* core 1 fetches 1-1..1-11 at cycles 1..11                  (exact);
* the forked section starts fetching 2 cycles + 1 after the fork (cycle 8);
* total fetch 30 cycles, total retire 43 (ours differ by a small constant
  per nesting level; see EXPERIMENTS.md).
"""

from _common import emit, table

from repro.analytic import fetch_cycles, instructions, retire_cycles
from repro.isa import assemble
from repro.paper import SUM_FORKED_ASM
from repro.sim import SimConfig, simulate


def _run():
    src = SUM_FORKED_ASM + "\n.data\nn: .quad 5\ntab: .quad 1,2,3,4,5\n"
    prog = assemble(src, entry="sum")
    init = {"rdi": prog.data_symbols["tab"], "rsi": 5}
    return simulate(prog, SimConfig(n_cores=5), initial_regs=init)


def bench_figure10_timing(benchmark):
    result, proc = benchmark.pedantic(_run, rounds=1, iterations=1)
    root = proc.order[0]
    i18 = root.instructions[7]
    rows = [
        ["instructions", instructions(0), result.instructions],
        ["sections", 5, result.sections],
        ["result (rax)", 15, result.return_value],
        ["1-8 stage cycles (fd rr ew ar ma ret)",
         "(8, 9, 10, 11, 14, 15)", str(i18.timing.row())],
        ["core 1 fetch cycles", "1..11",
         "%d..%d" % (root.instructions[0].timing.fd,
                     root.instructions[-1].timing.fd)],
        ["section 2 first fetch", 8,
         proc.order[1].instructions[0].timing.fd],
        ["total fetch cycles", fetch_cycles(0), result.fetch_end],
        ["total retire cycles", retire_cycles(0), result.retire_end],
    ]
    text = table("Figure 10 — execution timing of the sum(t,5) run",
                 ["quantity", "paper", "measured"], rows)
    text += "\n\n" + proc.timing_table()
    emit("fig10_timing", text)
    assert i18.timing.row() == (8, 9, 10, 11, 14, 15)
    assert result.sections == 5
    assert abs(result.fetch_end - fetch_cycles(0)) <= 4
    assert abs(result.retire_end - retire_cycles(0)) <= 8
