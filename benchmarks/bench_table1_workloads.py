"""E4 — Table 1: the ten PBBS benchmarks.

Regenerates the benchmark inventory, verifies every compiled MiniC program
against its Python oracle, and reports trace composition (the stack/memory
shares behind the paper's Section 3 analysis).
"""

from _common import BENCH_SCALE, emit, table

from repro.workloads import WORKLOADS


def _run():
    rows = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=1 + BENCH_SCALE, seed=1)
        inst.verify()
        result = inst.run(record_trace=True)
        trace = result.trace
        steps = len(trace)
        rows.append([
            workload.key, workload.name, inst.n, steps,
            "%.1f%%" % (100.0 * trace.memory_ops() / steps),
            "%.1f%%" % (100.0 * trace.stack_ops() / steps),
            "%.1f%%" % (100.0 * trace.branches() / steps),
            "ok",
        ])
    return rows


def bench_table1_workloads(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = table(
        "Table 1 — the ten PBBS benchmarks (verified against oracles)",
        ["id", "benchmark", "n", "instrs", "mem", "stack", "branch",
         "oracle"],
        rows)
    emit("table1_workloads", text)
    assert len(rows) == 10
    assert all(row[-1] == "ok" for row in rows)
