"""A1 — ablation: stack-pointer serialization (Section 3 claim iii).

The paper (citing Austin & Sohi 1992, Postiff et al. 1999, and Goossens &
Parello 2013) holds that the stack is a main obstacle to ILP capture.  We
quantify it by toggling the parallel model's two stack-related reliefs on
the same traces:

* rsp dependencies kept vs ignored,
* memory renaming (which removes stack-slot reuse false deps) on vs off.
"""

from _common import BENCH_SCALE, emit, table

from repro.ilp import PARALLEL_MODEL
from repro.ilp.analyzer import analyze_stream_multi
from repro.workloads import WORKLOADS

MODELS = [
    PARALLEL_MODEL.derive("rsp+false-deps", ignore_stack_pointer=False,
                          rename_memory=False),
    PARALLEL_MODEL.derive("rsp-deps-kept", ignore_stack_pointer=False),
    PARALLEL_MODEL.derive("false-deps-kept", rename_memory=False),
    PARALLEL_MODEL,
]


def _sweep():
    rows = []
    checks = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=2 + BENCH_SCALE, seed=1)
        results = analyze_stream_multi(inst.trace_entries(), MODELS)
        rows.append([workload.key, workload.short, inst.n]
                    + ["%.1f" % r.ilp for r in results]
                    + ["%.1fx" % (results[-1].ilp / results[0].ilp)])
        checks.append(results)
    return rows, checks


def bench_ablation_stack(benchmark):
    rows, checks = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Ablation A1 — what the stack costs "
        "(parallel model with stack reliefs toggled)",
        ["id", "benchmark", "n"] + [m.name for m in MODELS] + ["relief"],
        rows)
    emit("ablation_stack", text)
    for results in checks:
        both_kept, rsp_kept, false_kept, full = (r.ilp for r in results)
        assert full >= rsp_kept >= both_kept * 0.999
        assert full >= false_kept
        # the paper's claim: removing stack serialization unlocks large ILP
    assert any(r[-1].ilp > 10 * r[0].ilp for r in checks)
