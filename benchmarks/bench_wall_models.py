"""E7 — Section 3 context: the finite-machine ILP models of the literature.

Reproduces the ordering the paper's related-work review establishes:

    real/limited machines (Wall's "good": ~5)
      <  ideal speculative cores (the sequential model)
      <  Wall's "perfect" model
      <= the paper's parallel model (adds rsp exclusion)

on the Table 1 traces.
"""

from _common import BENCH_SCALE, emit, table

from repro.ilp import (
    PARALLEL_MODEL,
    SEQUENTIAL_MODEL,
    wall_good_model,
    wall_perfect_model,
)
from repro.ilp.analyzer import analyze_stream_multi
from repro.workloads import WORKLOADS

MODELS = [
    wall_good_model(window_size=64, issue_width=4).derive("wall-small",
                                                          window_size=64,
                                                          issue_width=4),
    wall_good_model(),
    SEQUENTIAL_MODEL,
    wall_perfect_model(),
    PARALLEL_MODEL,
]


def _sweep():
    rows = []
    per_workload = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=2 + BENCH_SCALE, seed=1)
        results = analyze_stream_multi(inst.trace_entries(), MODELS)
        rows.append([workload.key, workload.short, inst.n,
                     results[0].instructions]
                    + ["%.2f" % r.ilp for r in results])
        per_workload.append((workload, results))
    return rows, per_workload


def bench_wall_models(benchmark):
    rows, per_workload = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Section 3 — finite-machine ILP models (Wall) vs the paper's limits",
        ["id", "benchmark", "n", "instrs"] + [m.name for m in MODELS],
        rows)
    emit("wall_models", text)
    for workload, results in per_workload:
        small, good, seq, perfect, par = (r.ilp for r in results)
        # Wall's small machine is the most constrained; the parallel model
        # dominates everything.
        assert small <= good * 1.05
        assert par >= perfect * 0.99
        assert par > 2 * seq
        # The paper's Wall-summary: limited machines catch ~5 ILP.
        assert small < 8
