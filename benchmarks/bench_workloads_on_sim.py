"""E8 — extension: the Table 1 suite on the simulated many-core.

The paper's Section 5 closes with two in-progress simulators meant to
"quantify the IPC performance of a many-core processor" on real programs;
this benchmark runs that experiment on our simulator: each PBBS workload
is compiled sequentially, fork-transformed automatically (no source
changes), and executed on 1 vs 32 cores.

Expected shape: divide-and-conquer-rich workloads (the data-parallel six)
gain fetch parallelism from distribution; the greedy-sequential ones
(matching, MST's union-find phase) gain little — mirroring Figure 7's
split dynamically.
"""

from _common import BENCH_SCALE, emit, table

from repro.fork import fork_transform
from repro.machine import run_forked
from repro.sim import SimConfig, simulate
from repro.workloads import WORKLOADS


def _sweep():
    rows = []
    speedups = {}
    for workload in WORKLOADS:
        inst = workload.instance(scale=BENCH_SCALE, seed=1)
        prog = fork_transform(inst.program)
        oracle, _ = run_forked(prog)
        assert oracle.signed_output == inst.expected_output

        one, _ = simulate(prog, SimConfig(n_cores=1, stack_shortcut=True))
        many, _ = simulate(prog, SimConfig(n_cores=32, stack_shortcut=True))
        assert one.outputs == oracle.output == many.outputs
        speedup = one.fetch_end / many.fetch_end
        speedups[workload.short] = speedup
        rows.append([
            workload.key, workload.short, inst.n, many.instructions,
            many.sections, one.fetch_end, many.fetch_end,
            "%.2f" % many.fetch_ipc, "%.2fx" % speedup,
            "yes" if workload.data_parallel else "no",
        ])
    return rows, speedups


def bench_workloads_on_sim(benchmark):
    rows, speedups = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Extension E8 — fork-transformed Table 1 workloads on the "
        "simulated many-core (1 vs 32 cores)",
        ["id", "benchmark", "n", "instrs", "sections", "fetch@1",
         "fetch@32", "IPC@32", "speedup", "data-par"],
        rows)
    emit("workloads_on_sim", text)
    # distribution must help somewhere, and never hurt
    assert all(s >= 0.95 for s in speedups.values())
    assert sum(1 for s in speedups.values() if s > 1.3) >= 4
