"""E8 — extension: the Table 1 suite on the simulated many-core.

The paper's Section 5 closes with two in-progress simulators meant to
"quantify the IPC performance of a many-core processor" on real programs;
this benchmark runs that experiment on our simulator: each PBBS workload
is compiled sequentially, fork-transformed automatically (no source
changes), and executed on 1 vs 32 cores.

Expected shape: divide-and-conquer-rich workloads (the data-parallel six)
gain fetch parallelism from distribution; the greedy-sequential ones
(matching, MST's union-find phase) gain little — mirroring Figure 7's
split dynamically.
"""

import time

from _common import BENCH_SCALE, emit, emit_json, run_sim_batch, table

from repro.fork import fork_transform
from repro.machine import run_forked
from repro.runner import Job
from repro.sim import SimConfig, simulate
from repro.workloads import WORKLOADS, get_workload


def _sweep():
    # oracle + job construction per workload; the 1-core/32-core pairs
    # then fan through the batch engine (REPRO_BENCH_JOBS worker
    # processes, REPRO_BENCH_CACHE result cache) in one batch.
    jobs, insts, oracles = [], {}, {}
    for workload in WORKLOADS:
        inst = workload.instance(scale=BENCH_SCALE, seed=1)
        prog = fork_transform(inst.program)
        oracle, _ = run_forked(prog)
        assert oracle.signed_output == inst.expected_output
        insts[workload.short], oracles[workload.short] = inst, oracle
        for cores in (1, 32):
            jobs.append(Job.from_program(
                prog, config=SimConfig(n_cores=cores, stack_shortcut=True),
                job_id="e8:%s:%d" % (workload.short, cores)))
    payloads, _ = run_sim_batch(jobs)
    by_id = {job.job_id: payload
             for job, payload in zip(jobs, payloads)}

    rows = []
    speedups = {}
    records = []
    for workload in WORKLOADS:
        inst, oracle = insts[workload.short], oracles[workload.short]
        one = by_id["e8:%s:1" % workload.short]
        many = by_id["e8:%s:32" % workload.short]
        assert one["outputs"] == oracle.output == many["outputs"]
        speedup = one["fetch_end"] / many["fetch_end"]
        speedups[workload.short] = speedup
        rows.append([
            workload.key, workload.short, inst.n, many["instructions"],
            many["sections"], one["fetch_end"], many["fetch_end"],
            "%.2f" % many["fetch_ipc"], "%.2fx" % speedup,
            "yes" if workload.data_parallel else "no",
        ])
        records.append({
            "id": workload.key, "benchmark": workload.short, "n": inst.n,
            "instructions": many["instructions"],
            "sections": many["sections"],
            "fetch_end_1": one["fetch_end"],
            "fetch_end_32": many["fetch_end"],
            "fetch_ipc_32": many["fetch_ipc"], "speedup": speedup,
            "data_parallel": workload.data_parallel,
            "occupancy_32": many["occupancy_summary"],
        })
    return rows, speedups, records


def bench_workloads_on_sim(benchmark):
    rows, speedups, records = benchmark.pedantic(_sweep, rounds=1,
                                                 iterations=1)
    text = table(
        "Extension E8 — fork-transformed Table 1 workloads on the "
        "simulated many-core (1 vs 32 cores)",
        ["id", "benchmark", "n", "instrs", "sections", "fetch@1",
         "fetch@32", "IPC@32", "speedup", "data-par"],
        rows)
    emit("workloads_on_sim", text)
    emit_json("workloads_on_sim",
              {"scale": BENCH_SCALE, "workloads": records})
    # distribution must help somewhere, and never hurt
    assert all(s >= 0.95 for s in speedups.values())
    assert sum(1 for s in speedups.values() if s > 1.3) >= 4


# -- scheduler fast path ------------------------------------------------------

#: workloads timed for the naive-vs-event wall-clock comparison
_FAST_PATH_CASES = [("quicksort", 12), ("dictionary", 12), ("bfs", 8)]


def _time_modes():
    walls = {"naive": 0.0, "event": 0.0}
    records = []
    for short, n in _FAST_PATH_CASES:
        inst = get_workload(short).instance(n=n + 2 * BENCH_SCALE, seed=1)
        prog = fork_transform(inst.program)
        entry = {"benchmark": short, "n": inst.n}
        results = {}
        for mode in ("naive", "event"):
            config = SimConfig(n_cores=64, stack_shortcut=True,
                               kernel=mode)
            start = time.perf_counter()
            result, _ = simulate(prog, config)
            wall = time.perf_counter() - start
            walls[mode] += wall
            results[mode] = result
            entry["wall_%s_s" % mode] = wall
            entry["cycles"] = result.cycles
        # the fast path buys wall time, never simulated behaviour
        assert results["naive"].cycles == results["event"].cycles
        assert results["naive"].outputs == results["event"].outputs
        assert results["naive"].requests == results["event"].requests
        entry["speedup"] = entry["wall_naive_s"] / entry["wall_event_s"]
        records.append(entry)
    return walls, records


def bench_scheduler_fast_path(benchmark):
    """Wall-clock cost of naive vs event-driven scheduling at 64 cores.

    The naive loop steps all 64 cores every cycle even though most host no
    work; the event-driven loop parks them, so its wall time tracks useful
    work.  Results stay bit-identical (asserted per workload)."""
    walls, records = benchmark.pedantic(_time_modes, rounds=1, iterations=1)
    aggregate = walls["naive"] / walls["event"]
    rows = [[r["benchmark"], r["n"], r["cycles"],
             "%.3f" % r["wall_naive_s"], "%.3f" % r["wall_event_s"],
             "%.2fx" % r["speedup"]] for r in records]
    rows.append(["TOTAL", "", "", "%.3f" % walls["naive"],
                 "%.3f" % walls["event"], "%.2fx" % aggregate])
    emit("scheduler_fast_path", table(
        "Event-driven scheduler fast path — wall clock at 64 cores",
        ["benchmark", "n", "cycles", "naive (s)", "event (s)", "speedup"],
        rows))
    emit_json("scheduler_fast_path", {
        "n_cores": 64, "scale": BENCH_SCALE, "workloads": records,
        "wall_naive_s": walls["naive"], "wall_event_s": walls["event"],
        "aggregate_speedup": aggregate,
    })
    assert aggregate >= 2.0, (
        "event-driven fast path speedup %.2fx below the 2x floor"
        % aggregate)
