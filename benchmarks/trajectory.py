"""Machine-readable perf history: one normalized row per gated run.

``check_regression.py`` appends a row to
``benchmarks/results/TRAJECTORY.jsonl`` every time the gate runs (unless
``--update`` or ``--no-trajectory``), so the repo accumulates a
trajectory of its own performance — speedups, per-workload cycle totals,
cache hit rate and a digest of the batch engine's host metrics — instead
of only ever knowing its latest BENCH snapshot.  Rows are append-only
JSONL: one JSON object per line, stable keys, schema-versioned, so a
dashboard (or ``pandas.read_json(..., lines=True)``) can plot the whole
history without migrations.

The file deliberately does NOT match the ``BENCH_*.json`` pattern: the
gate's artifact census tracks deterministic baselines, while trajectory
rows carry wall-clock-derived ratios whose drift is an observation.

CLI::

    PYTHONPATH=src python benchmarks/trajectory.py --check   # validate
    PYTHONPATH=src python benchmarks/trajectory.py --show 5  # tail rows
    PYTHONPATH=src python benchmarks/trajectory.py --smoke   # round-trip
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import RESULTS_DIR  # noqa: E402

#: bumped whenever the row shape changes, so readers can gate on it
TRAJECTORY_SCHEMA_VERSION = 1

TRAJECTORY_PATH = RESULTS_DIR / "TRAJECTORY.jsonl"

#: fields every row must carry (type-checked by validate_row)
REQUIRED_FIELDS = {
    "schema_version": int,
    "ts": str,
    "passed": bool,
    "failures": list,
}


def _git_commit() -> Optional[str]:
    """Short commit hash of the working tree, or None outside git /
    without a git binary (rows stay useful either way)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(Path(__file__).resolve().parent.parent),
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def host_metrics_digest(host_metrics: Optional[Dict[str, Any]]) -> Optional[str]:
    """Short content digest of a host-domain metrics export.  Wall-clock
    values differ every run, so the digest is a *fingerprint* for "which
    telemetry payload produced this row", not a comparison key."""
    if host_metrics is None:
        return None
    canonical = json.dumps(host_metrics, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def build_row(passed: bool, failures: List[str],
              fast_path: Optional[Dict[str, Any]] = None,
              vector: Optional[Dict[str, Any]] = None,
              sweep_report: Optional[Any] = None,
              serve: Optional[Dict[str, Any]] = None,
              tolerance: Optional[float] = None,
              now: Optional[float] = None) -> Dict[str, Any]:
    """Fold one gate run's fresh measurements into a trajectory row.

    *fast_path* / *vector* / *serve* are the fresh dicts from
    ``check_regression.run_fast_path`` / ``run_vector_kernel`` /
    ``bench_serve.run_serve_bench``; *sweep_report* is the ``--full``
    sweep's BatchReport (or None when the sweep did not run).
    """
    row: Dict[str, Any] = {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                            time.gmtime(now if now is not None
                                        else time.time())),
        "commit": _git_commit(),
        "passed": passed,
        "failures": list(failures),
    }
    if tolerance is not None:
        row["tolerance"] = tolerance
    cycles: Dict[str, int] = {}
    if fast_path is not None:
        row["fast_path_speedup"] = round(fast_path["aggregate_speedup"], 4)
        row["fast_path_floor"] = round(fast_path["floor_speedup"], 4)
        for record in fast_path["workloads"]:
            cycles[record["benchmark"]] = record["cycles"]
    if vector is not None:
        row["vector_speedup"] = round(vector["aggregate_speedup"], 4)
        row["vector_floor"] = round(vector["floor_speedup"], 4)
        for record in vector["workloads"]:
            cycles.setdefault("vector:%s" % record["benchmark"],
                              record["cycles"])
    if cycles:
        row["cycles"] = dict(sorted(cycles.items()))
        row["cycles_total"] = sum(cycles.values())
    if serve is not None:
        # serving-tier latencies are wall-clock observations (plotted,
        # never gated); the burst accounting is deterministic
        row["serve"] = {
            "cold_ms": {r["benchmark"]: r["cold_ms"]
                        for r in serve["workloads"]},
            "lru_ms": {r["benchmark"]: r["lru_ms"]
                       for r in serve["workloads"]},
            "disk_ms": {r["benchmark"]: r["disk_ms"]
                        for r in serve["workloads"]},
            "burst_jobs_per_s": serve["burst"]["jobs_per_s"],
            "burst_coalesced": serve["burst"]["coalesced"],
        }
    if sweep_report is not None:
        stats = sweep_report.cache_stats or {}
        lookups = sum(stats.get(k, 0) for k in ("hits", "misses", "healed"))
        row["cache"] = {
            "hits": stats.get("hits", 0),
            "misses": stats.get("misses", 0),
            "healed": stats.get("healed", 0),
            "hit_rate": (round(stats.get("hits", 0) / lookups, 4)
                         if lookups else None),
        }
        row["sweep_jobs"] = len(sweep_report.outcomes)
        row["host_digest"] = host_metrics_digest(sweep_report.host_metrics)
    return row


def append_row(row: Dict[str, Any],
               path: Path = TRAJECTORY_PATH) -> Path:
    """Append *row* as one JSONL line (creating the file if needed)."""
    problems = validate_row(row)
    if problems:
        raise ValueError("refusing to append invalid trajectory row: %s"
                         % "; ".join(problems))
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def load_rows(path: Path = TRAJECTORY_PATH) -> List[Dict[str, Any]]:
    """All rows, oldest first; empty when no history exists yet."""
    if not path.exists():
        return []
    rows = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def validate_row(row: Any) -> List[str]:
    """Schema problems of one row ([] = valid)."""
    problems = []
    if not isinstance(row, dict):
        return ["row is not an object: %r" % (row,)]
    for name, kind in REQUIRED_FIELDS.items():
        if name not in row:
            problems.append("missing field %r" % name)
        elif not isinstance(row[name], kind):
            problems.append("field %r is %s, expected %s"
                            % (name, type(row[name]).__name__,
                               kind.__name__))
    if row.get("schema_version") not in (None, TRAJECTORY_SCHEMA_VERSION):
        problems.append("unknown schema_version %r" % row["schema_version"])
    return problems


def validate_file(path: Path = TRAJECTORY_PATH) -> List[str]:
    """Schema problems across the whole history file ([] = valid)."""
    problems = []
    if not path.exists():
        return problems
    for i, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            problems.append("line %d: invalid JSON (%s)" % (i, exc))
            continue
        problems.extend("line %d: %s" % (i, p) for p in validate_row(row))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="inspect/validate the perf-trajectory history "
                    "(benchmarks/results/TRAJECTORY.jsonl)")
    parser.add_argument("--check", action="store_true",
                        help="validate every row; exit 1 on problems")
    parser.add_argument("--show", type=int, metavar="N", default=None,
                        help="print the last N rows")
    parser.add_argument("--smoke", action="store_true",
                        help="build + append + reload a synthetic row in a "
                             "temp file (CI self-test; touches nothing)")
    args = parser.parse_args(argv)

    if args.smoke:
        import tempfile
        row = build_row(passed=True, failures=[],
                        fast_path={"aggregate_speedup": 3.0,
                                   "floor_speedup": 2.5,
                                   "workloads": [{"benchmark": "smoke",
                                                  "cycles": 123}]})
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "TRAJECTORY.jsonl"
            append_row(row, path)
            append_row(dict(row, passed=False, failures=["x"]), path)
            rows = load_rows(path)
            assert len(rows) == 2 and rows[0]["cycles_total"] == 123
            assert not validate_file(path)
        print("trajectory smoke ok (row: %s)"
              % json.dumps(row, sort_keys=True))
        return 0

    if args.check:
        problems = validate_file()
        if problems:
            for problem in problems:
                print("error: %s" % problem, file=sys.stderr)
            return 1
        print("%s: %d rows, all valid"
              % (TRAJECTORY_PATH.name, len(load_rows())))
        return 0

    rows = load_rows()
    show = args.show if args.show is not None else 10
    if not rows:
        print("no trajectory yet (%s missing) — run "
              "benchmarks/check_regression.py to record the first row"
              % TRAJECTORY_PATH)
        return 0
    for row in rows[-show:]:
        print(json.dumps(row, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
