"""Vectorized struct-of-arrays kernel — wall clock at 256 cores.

The naive reference loop steps all 256 cores every cycle and re-walks
the full renaming-request history each cycle; the event kernel parks
idle cores but still polls its pending-request list; the vector kernel
keeps chip-wide scheduler state in struct-of-arrays numpy planes (awake
mask, occupancy matrix, register-file full/empty bits) and steps
requests lazily off condition heaps, escaping to scalar code only for
cores with real work.  All three produce bit-identical results
(asserted per workload) under the paper's default protocol
configuration; the vector kernel must beat the naive loop by at least
10x aggregated over the full Table 1 suite.

Timing discipline: every workload is run under all three kernels
back-to-back per round (a load spike inflates all kernels alike), and
the recorded walls are per-kernel minima over the rounds — the
noise-free cost estimate on a shared machine.
"""

import gc
import time

from _common import BENCH_SCALE, emit, emit_json, table

from repro.fork import fork_transform
from repro.sim import SimConfig, simulate
from repro.workloads import WORKLOADS

#: kernels timed per workload, in run order (naive first: the reference)
_KERNELS = ("naive", "event", "vector")

#: chip size for the sweep — wide enough that per-core per-cycle costs
#: dominate the naive loop, matching the ISSUE's 256-core target
_N_CORES = 256

#: timing rounds; walls are per-kernel minima across rounds
_ROUNDS = 2


def _time_kernels():
    records = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=BENCH_SCALE, seed=1)
        prog = fork_transform(inst.program)
        entry = {"benchmark": workload.short, "n": inst.n}
        walls = {kernel: [] for kernel in _KERNELS}
        results = {}
        for _ in range(_ROUNDS):
            for kernel in _KERNELS:
                config = SimConfig(n_cores=_N_CORES, kernel=kernel)
                # drop the previous run's cyclic garbage outside the
                # timed region: 60 chip-sized object graphs back to back
                # otherwise skew the later, allocation-denser kernels
                gc.collect()
                start = time.perf_counter()
                result, _ = simulate(prog, config)
                walls[kernel].append(time.perf_counter() - start)
                results[kernel] = result
        # vectorization buys wall time, never simulated behaviour
        ref = results["naive"]
        for kernel in ("event", "vector"):
            res = results[kernel]
            assert (res.cycles, res.outputs, res.requests,
                    res.final_memory) == (ref.cycles, ref.outputs,
                                          ref.requests, ref.final_memory), (
                "%s kernel diverged on %s" % (kernel, workload.short))
        entry["cycles"] = ref.cycles
        for kernel in _KERNELS:
            entry["wall_%s_s" % kernel] = min(walls[kernel])
        entry["speedup_vector"] = (entry["wall_naive_s"]
                                   / entry["wall_vector_s"])
        entry["speedup_event"] = (entry["wall_naive_s"]
                                  / entry["wall_event_s"])
        records.append(entry)
    totals = {kernel: sum(r["wall_%s_s" % kernel] for r in records)
              for kernel in _KERNELS}
    return totals, records


def bench_vector_kernel(benchmark):
    """Wall-clock cost of naive vs event vs vector kernels at 256 cores.

    Runs every Table 1 workload under all three kernels back-to-back and
    asserts bit-identical architectural results before trusting any
    timing.  The headline number is the aggregate naive/vector ratio
    over the whole suite."""
    totals, records = benchmark.pedantic(_time_kernels, rounds=1,
                                         iterations=1)
    aggregate = totals["naive"] / totals["vector"]
    aggregate_event = totals["naive"] / totals["event"]
    rows = [[r["benchmark"], r["n"], r["cycles"],
             "%.3f" % r["wall_naive_s"], "%.3f" % r["wall_event_s"],
             "%.3f" % r["wall_vector_s"],
             "%.2fx" % r["speedup_vector"]] for r in records]
    rows.append(["TOTAL", "", "", "%.3f" % totals["naive"],
                 "%.3f" % totals["event"], "%.3f" % totals["vector"],
                 "%.2fx" % aggregate])
    emit("vector_kernel", table(
        "Vectorized SoA kernel — wall clock at 256 cores (Table 1 suite)",
        ["benchmark", "n", "cycles", "naive (s)", "event (s)",
         "vector (s)", "speedup"],
        rows))
    emit_json("vector_kernel", {
        "n_cores": _N_CORES, "scale": BENCH_SCALE, "rounds": _ROUNDS,
        "workloads": records,
        "wall_naive_s": totals["naive"], "wall_event_s": totals["event"],
        "wall_vector_s": totals["vector"],
        "aggregate_speedup": aggregate,
        "aggregate_speedup_event": aggregate_event,
    })
    assert aggregate >= 10.0, (
        "vector kernel speedup %.2fx below the 10x floor" % aggregate)
