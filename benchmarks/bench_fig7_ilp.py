"""E3 — Figure 7: ILP of the ten PBBS benchmarks, parallel vs sequential.

For every Table 1 workload, traces doubling datasets and schedules each
trace (in one streamed pass) under the paper's two models.  The paper's
claims to reproduce:

* sequential-model ILP is low (paper: 3.2-5.6) and flat in the dataset;
* parallel-model ILP is orders of magnitude higher;
* for the data-parallel benchmarks (1, 2, 5, 6, 9, 10) the parallel ILP
  *grows* with the dataset.

Dataset sizes are scaled down from the paper's 1M-1G instructions to what
a Python interpreter sweeps in minutes (see DESIGN.md, substitutions);
raise REPRO_BENCH_SCALE for larger runs.
"""

from _common import BENCH_SCALE, emit, table

from repro.ilp import PARALLEL_MODEL, SEQUENTIAL_MODEL
from repro.ilp.analyzer import analyze_stream_multi
from repro.workloads import WORKLOADS

#: dataset scales per workload (geometric doubling, like the paper's 11)
SCALES = [0, 1, 2, 3, 4] if BENCH_SCALE == 0 else list(range(6 + BENCH_SCALE))


def _sweep():
    rows = []
    checks = []
    for workload in WORKLOADS:
        seq_ilps, par_ilps = [], []
        for scale in SCALES:
            inst = workload.instance(scale=scale, seed=1)
            seq, par = analyze_stream_multi(
                inst.trace_entries(), [SEQUENTIAL_MODEL, PARALLEL_MODEL])
            seq_ilps.append(seq.ilp)
            par_ilps.append(par.ilp)
            rows.append([workload.key, workload.short, inst.n,
                         seq.instructions,
                         "%.2f" % seq.ilp, "%.1f" % par.ilp])
        growth = par_ilps[-1] / par_ilps[0]
        checks.append((workload, seq_ilps, par_ilps, growth))
    return rows, checks


def bench_figure7_ilp(benchmark):
    rows, checks = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Figure 7 — ILP of ten benchmarks, sequential vs parallel models",
        ["id", "benchmark", "n", "instrs", "seq ILP", "par ILP"], rows)
    notes = ["", "shape checks (paper's claims):"]
    for workload, seq_ilps, par_ilps, growth in checks:
        notes.append(
            "  %s %-10s seq %.2f..%.2f (flat)  par x%.1f growth%s"
            % (workload.key, workload.short, min(seq_ilps), max(seq_ilps),
               growth,
               "  [data-parallel]" if workload.data_parallel else ""))
    emit("fig7_ilp", text + "\n" + "\n".join(notes))

    for workload, seq_ilps, par_ilps, growth in checks:
        # sequential ILP low and flat
        assert max(seq_ilps) < 8.0
        assert max(seq_ilps) - min(seq_ilps) < 2.0
        # parallel >> sequential
        assert min(p / s for p, s in zip(par_ilps, seq_ilps)) > 2.0
        # data-parallel benchmarks grow with the dataset
        if workload.data_parallel:
            assert growth > 1.5, workload.short
