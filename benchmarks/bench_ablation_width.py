"""A7 — ablation: per-core superscalar width.

The paper argues for minimal cores: "each core implements a single
instruction path (no superscalar or VLIW path) ... Slowness is to be
compensated by parallelism."  This ablation makes each stage N-wide and
compares against adding more single-width cores, on the forked sum.
"""

from _common import BENCH_SCALE, emit, run_sim_batch, table

from repro.paper import paper_array, sum_forked_program
from repro.runner import Job
from repro.sim import SimConfig


def _config(cores, width):
    return SimConfig(n_cores=cores, stack_shortcut=True,
                     fetch_width=width, rename_width=width,
                     execute_width=width, addr_rename_width=width,
                     memory_width=width, retire_width=width)


def _sweep():
    n = 80 << BENCH_SCALE
    prog = sum_forked_program(paper_array(n))
    expected = [n * (n + 1) // 2]
    grid = [(8, 1), (8, 2), (8, 4), (16, 1), (32, 1), (32, 4)]
    payloads, _ = run_sim_batch(
        [Job.from_program(prog, config=_config(cores, width),
                          job_id="a7:%dx%d" % (cores, width))
         for cores, width in grid])
    rows = []
    results = {}
    for (cores, width), payload in zip(grid, payloads):
        assert payload["outputs"] == expected
        results[(cores, width)] = payload
        rows.append(["%d cores x width %d" % (cores, width),
                     cores * width, payload["fetch_end"],
                     "%.2f" % payload["fetch_ipc"], payload["retire_end"],
                     "%.2f" % payload["retire_ipc"]])
    return rows, results


def bench_ablation_width(benchmark):
    rows, results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Ablation A7 — wide cores vs more simple cores (forked sum)",
        ["configuration", "total issue slots", "fetch cy", "fetch IPC",
         "retire cy", "retire IPC"], rows)
    text += (
        "\n\nFinding: on the reduction's chain-bound sections, widening a "
        "core shortens per-section\nfetch latency and therefore the "
        "section-to-section value chain — at equal slot budget the\nwide "
        "configuration can beat more simple cores.  The paper's "
        "single-path bet relies on\nsection counts far exceeding cores "
        "(its 508K-ILP regime), where width 1 suffices;\nat small scales "
        "the latency term is visible.  An honest nuance the analytical "
        "model hides.")
    emit("ablation_width", text)
    # factual invariants: both extra cores and extra width help, and the
    # largest machine is the fastest
    assert results[(8, 4)]["fetch_end"] < results[(8, 1)]["fetch_end"]
    assert results[(32, 1)]["fetch_end"] < results[(8, 1)]["fetch_end"]
    assert results[(32, 4)]["fetch_end"] == min(
        r["fetch_end"] for r in results.values())
