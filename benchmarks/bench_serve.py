"""Serving-layer latency and throughput: cold vs LRU-warm vs disk-warm,
plus the coalesced-burst throughput the daemon exists for.

Three tiers of the same request, measured end-to-end over real HTTP
(submit → stream → fetch):

* **cold** — nothing cached: the full pipeline including the
  simulation in the worker pool;
* **disk-warm** — a fresh daemon sharing the disk cache of a previous
  one (the restart story): admission resolves from the on-disk tier;
* **lru-warm** — the same daemon asked again: a dict lookup, no
  simulation, no filesystem.

The burst section measures the coalescing win: K identical + M distinct
jobs submitted concurrently against one busy worker must run exactly
``1 + M`` simulations (never ``K + M``), with the K-1 duplicates riding
the single in-flight execution.

Wall-clock numbers are environment-dependent and are **not** gated; the
deterministic skeleton — job keys, payload digests, execution and
coalesce counts — is what ``check_regression.py`` holds fixed.
"""

import concurrent.futures
import hashlib
import json
import tempfile
import time

from _common import emit, emit_json, table

from repro.serve import DaemonThread, ServeConfig

#: the two Table 1 workloads the serving benchmark exercises (one
#: divide-and-conquer, one graph traversal — different payload shapes)
SERVE_WORKLOADS = ("quicksort", "bfs")
SERVE_CORES = 8

#: burst shape: K identical submits racing M distinct ones
K_IDENTICAL = 8
M_DISTINCT = 4


def _spec(short, n_cores=SERVE_CORES):
    return {"jobs": [{"id": short, "workload": short,
                      "config": {"n_cores": n_cores}}]}


def _burst_asm(tag):
    return """
main:
    movq $%d, %%rcx
loop:
    decq %%rcx
    jnz loop
    movq $%d, %%rax
    out %%rax
    hlt
""" % (3000, tag)


def _burst_spec(tag):
    return {"jobs": [{"id": "burst-%d" % tag, "asm": _burst_asm(tag),
                      "config": {"n_cores": 2,
                                 "max_cycles": 2_000_000}}]}


def _sha(payload):
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


def _timed_run(client, spec):
    """Submit → wait → fetch; returns (record, payload, milliseconds)."""
    start = time.perf_counter()
    record = client.submit(spec)[0]
    if record["status"] != "cached":
        final = client.wait(record["job"])
        assert final == "done", (record, final)
    payload = client.result(record["key"])["payload"]
    return record, payload, 1e3 * (time.perf_counter() - start)


def run_serve_bench():
    """The full measurement; returns the BENCH payload dict.

    Reused verbatim by ``check_regression.check_serve`` so the gate and
    the benchmark can never drift apart on methodology.
    """
    records = {}
    with tempfile.TemporaryDirectory() as cache_dir:
        # -- cold + lru-warm on one daemon --------------------------------
        config = ServeConfig(port=0, pool_size=2, cache_dir=cache_dir)
        with DaemonThread(config) as client:
            for short in SERVE_WORKLOADS:
                record, payload, cold_ms = _timed_run(client,
                                                      _spec(short))
                records[short] = {
                    "benchmark": short, "n_cores": SERVE_CORES,
                    "key": record["key"],
                    "payload_sha": _sha(payload),
                    "cold_ms": round(cold_ms, 3),
                }
            executions = client.healthz()["jobs"].get("done", 0)
            for short in SERVE_WORKLOADS:
                record, payload, lru_ms = _timed_run(client,
                                                     _spec(short))
                assert record["status"] == "cached", record
                assert record["cache_tier"] == "lru", record
                assert _sha(payload) == records[short]["payload_sha"]
                records[short]["lru_ms"] = round(lru_ms, 3)
            # warm fetches ran no additional simulations
            assert client.healthz()["jobs"].get("done", 0) == executions

        # -- disk-warm on a fresh daemon sharing the cache dir ------------
        with DaemonThread(ServeConfig(port=0, pool_size=2,
                                      cache_dir=cache_dir)) as client:
            for short in SERVE_WORKLOADS:
                record, payload, disk_ms = _timed_run(client,
                                                      _spec(short))
                assert record["status"] == "cached", record
                assert record["cache_tier"] == "disk", record
                assert _sha(payload) == records[short]["payload_sha"]
                records[short]["disk_ms"] = round(disk_ms, 3)

    # -- coalesced burst: K identical + M distinct, one busy worker ------
    with DaemonThread(ServeConfig(port=0, pool_size=1,
                                  queue_limit=2 * (K_IDENTICAL
                                                   + M_DISTINCT))) \
            as client:
        # occupy the single worker so every burst key stays in flight
        # for the whole submission window (deterministic coalescing)
        blocker = client.submit(_burst_spec(999))[0]
        specs = ([_burst_spec(0)] * K_IDENTICAL
                 + [_burst_spec(tag + 1) for tag in range(M_DISTINCT)])
        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(len(specs)) as pool:
            submitted = list(pool.map(
                lambda spec: client.submit(spec)[0], specs))
        for record in submitted + [blocker]:
            assert client.wait(record["job"]) == "done", record
        burst_wall = time.perf_counter() - start
        health = client.healthz()
        metrics = client.metrics()

        def counter(name):
            for line in metrics.splitlines():
                if line.startswith("repro_serve_%s{" % name):
                    return int(float(line.rsplit(" ", 1)[1]))
            return 0

        burst = {
            "k_identical": K_IDENTICAL,
            "m_distinct": M_DISTINCT,
            # 1 blocker + 1 for the identical key + M distinct
            "executions": counter("executions"),
            "coalesced": counter("coalesced"),
            "jobs": health["jobs"],
            "wall_s": round(burst_wall, 4),
            "jobs_per_s": round(len(specs) / burst_wall, 2),
        }
        assert burst["executions"] == 1 + 1 + M_DISTINCT, burst
        assert burst["coalesced"] == K_IDENTICAL - 1, burst

    return {
        "n_cores": SERVE_CORES,
        "workloads": [records[short] for short in SERVE_WORKLOADS],
        "burst": burst,
    }


def bench_serve(benchmark):
    payload = benchmark.pedantic(run_serve_bench, rounds=1,
                                 iterations=1)
    rows = []
    for record in payload["workloads"]:
        rows.append((record["benchmark"],
                     "%.1f" % record["cold_ms"],
                     "%.1f" % record["disk_ms"],
                     "%.1f" % record["lru_ms"],
                     "%.0fx" % (record["cold_ms"] / record["lru_ms"]),
                     record["key"][:12],
                     record["payload_sha"][:12]))
    burst = payload["burst"]
    text = table(
        "Serving tiers — end-to-end latency per tier (ms) and the "
        "coalesced burst",
        ["workload", "cold", "disk", "lru", "cold/lru", "key",
         "sha"],
        rows)
    text += ("\n\nburst: %d identical + %d distinct -> %d executions "
             "(%d coalesced), %.2f jobs/s"
             % (burst["k_identical"], burst["m_distinct"],
                burst["executions"], burst["coalesced"],
                burst["jobs_per_s"]))
    emit("serve", text)
    emit_json("serve", payload)
    for record in payload["workloads"]:
        # the tier ordering claim: warm must beat cold
        assert record["lru_ms"] < record["cold_ms"], record
        assert record["disk_ms"] < record["cold_ms"], record
