"""E9 — extension: graceful degradation under injected faults.

The paper's machine has no fault story; ``repro.faults`` gives it one
(deterministic injection + ack/retry + section re-dispatch, sound by the
single-assignment renaming argument of Section 3).  This benchmark sweeps
a (NoC drop-rate x fail-stop core-deaths) grid over the Table 1 suite and
records the degradation curve: how many cycles each fault mix costs, how
much recovery work it took (retries, backoff cycles, replayed
instructions), and — the contract — that every faulted run still produced
**bit-identical architectural results** (outputs + memory digest) to the
fault-free run.

Expected shape: drop-rate cost scales with a workload's renaming traffic
(communication-heavy workloads pay more retries), while core-death cost
scales with the lost work replayed; slowdowns stay modest because
recovery is local — nothing global restarts.
"""

from _common import (BENCH_JOBS, BENCH_SCALE, bench_cache, emit, emit_json,
                     table)

from repro.faults import chaos_sweep
from repro.workloads import WORKLOADS

DROPS = (0.0, 0.05, 0.15)
DEATH_COUNTS = (0, 1, 2)


def _sweep():
    return chaos_sweep([w.short for w in WORKLOADS], DROPS, DEATH_COUNTS,
                       n_cores=16, seed=1234, scale=BENCH_SCALE,
                       pool_size=BENCH_JOBS, cache=bench_cache())


def bench_faults_sweep(benchmark):
    payload = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for rec in payload["records"]:
        rows.append([
            rec["benchmark"], "%.2f" % rec["drop_rate"], rec["deaths"],
            rec["base_cycles"], rec["cycles"],
            "%.2fx" % rec["slowdown"], rec["retries"],
            rec["backoff_cycles"], rec["redispatches"],
            rec["replayed_instructions"],
            "yes" if rec["identical"] else "NO",
        ])
    text = table(
        "E9  chaos sweep: Table 1 suite x (drop rate x core deaths), "
        "16 cores, seed %d" % payload["seed"],
        ["benchmark", "drop", "deaths", "base", "cycles", "slowdn",
         "retries", "backoff", "redisp", "replayed", "identical"],
        rows)
    emit("faults_sweep", text)
    emit_json("faults_sweep", payload)
    assert all(rec["identical"] for rec in payload["records"]), (
        "a faulted run diverged from the fault-free architectural results")
