"""E6 — Section 5: the analytical evaluation of the sum reduction.

Regenerates the paper's closed-form table (instructions, fetch time,
retirement time for 5·2ⁿ elements) and validates it against the executable
models: the forked machine must reproduce the instruction/section counts
exactly, and the cycle simulator's fetch/retire times must track the
formulas' growth.
"""

from _common import BENCH_SCALE, emit, table

from repro import analytic
from repro.isa import assemble
from repro.machine import ForkedMachine
from repro.paper import SUM_FORKED_ASM
from repro.sim import SimConfig, simulate

MAX_N = 4 + BENCH_SCALE          # paper goes to n=8 (1280 elements)


def _sum_program(n):
    elements = analytic.sum_sizes(n)
    values = list(range(1, elements + 1))
    src = SUM_FORKED_ASM + "\n.data\nn: .quad %d\ntab: .quad %s\n" % (
        elements, ", ".join(map(str, values)))
    prog = assemble(src, entry="sum")
    init = {"rdi": prog.data_symbols["tab"], "rsi": elements}
    return prog, init, sum(values)


def _run():
    rows = []
    for n in range(MAX_N + 1):
        prog, init, expected = _sum_program(n)
        machine = ForkedMachine(prog, initial_regs=init)
        functional = machine.run()
        cores = min(128, analytic.sections(n))
        # The paper's analysis uses the stack shortcut (statement ii) and
        # line-grained DMH replies; both are enabled here.
        sim, _ = simulate(prog,
                          SimConfig(n_cores=cores, stack_shortcut=True),
                          initial_regs=init)
        assert sim.return_value == functional.regs["rax"] == expected
        rows.append([
            n, analytic.sum_sizes(n),
            analytic.instructions(n), functional.steps,
            analytic.sections(n), len(machine.section_table()),
            analytic.fetch_cycles(n), sim.fetch_end,
            "%.1f" % analytic.fetch_ipc(n), "%.1f" % sim.fetch_ipc,
            analytic.retire_cycles(n), sim.retire_end,
        ])
    return rows


def bench_section5_analytic(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = table(
        "Section 5 — analytical model vs executable models "
        "(N=45*2^n+14(2^n-1), fetch=30+12n, retire=43+15n)",
        ["n", "elems", "N paper", "N run", "sect p", "sect run",
         "fetch p", "fetch sim", "fIPC p", "fIPC sim",
         "ret p", "ret sim"],
        rows)
    emit("sec5_analytic", text)
    for row in rows:
        assert row[2] == row[3]            # instruction count exact
        assert row[4] == row[5]            # section count exact
        fetch_paper, fetch_sim = row[6], row[7]
        ret_paper, ret_sim = row[10], row[11]
        # fetch time tracks the formula closely; retirement is within the
        # small-multiple band recorded in EXPERIMENTS.md
        assert fetch_sim <= 1.45 * fetch_paper
        assert ret_sim <= 3.5 * ret_paper
