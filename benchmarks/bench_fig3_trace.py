"""E1 — Figure 3: the 59-instruction run trace of sum(t,5).

Regenerates the dynamic trace of the paper's Figure 2 x86 code and checks
the paper's count: 59 executed instructions for the sum function (our
listing adds a 5-instruction main lead-in).
"""

from _common import emit, table

from repro.machine import run_sequential
from repro.paper import paper_array, sum_sequential_program


def _run():
    prog = sum_sequential_program(paper_array(5))
    result = run_sequential(prog, record_trace=True)
    sum_start = prog.code_symbols["sum"]
    sum_entries = [e for e in result.trace if e.addr >= sum_start]
    return prog, result, sum_entries


def bench_figure3_trace(benchmark):
    prog, result, sum_entries = benchmark.pedantic(_run, rounds=1,
                                                   iterations=1)
    listing = "\n".join("%4d  %s" % (i + 1, e.instr)
                        for i, e in enumerate(sum_entries))
    summary = table(
        "Figure 3 — instruction trace of the run of sum(t,5)",
        ["quantity", "paper", "measured"],
        [
            ["sum-function dynamic instructions", 59, len(sum_entries)],
            ["result (sum of 1..5)", 15, result.signed_output[0]],
            ["static sum instructions (Fig. 2)", 25,
             len(prog.code) - prog.code_symbols["sum"]],
        ])
    emit("fig3_trace", summary + "\n\ntrace listing:\n" + listing)
    assert len(sum_entries) == 59
    assert result.signed_output == [15]
