"""A2 — ablation: memory renaming (Section 4.2's central mechanism).

"Renaming should be extended to all hardware locations" — this ablation
measures what extending Tomasulo renaming to memory buys, from registers
only (WAR/WAW on memory kept) up to the full parallel model, and also what
dropping memory RAW entirely (a non-causal oracle) would add — showing the
model sits close to the true-dependence limit.
"""

from _common import BENCH_SCALE, emit, table

from repro.ilp import PARALLEL_MODEL
from repro.ilp.analyzer import analyze_stream_multi
from repro.workloads import WORKLOADS

MODELS = [
    PARALLEL_MODEL.derive("regs-only", rename_memory=False),
    PARALLEL_MODEL,
    PARALLEL_MODEL.derive("no-memory-deps", memory_dependencies=False),
]


def _sweep():
    rows = []
    checks = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=2 + BENCH_SCALE, seed=1)
        results = analyze_stream_multi(inst.trace_entries(), MODELS)
        gain = results[1].ilp / results[0].ilp
        rows.append([workload.key, workload.short, inst.n]
                    + ["%.1f" % r.ilp for r in results]
                    + ["%.1fx" % gain])
        checks.append((results, gain))
    return rows, checks


def bench_ablation_memrename(benchmark):
    rows, checks = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = table(
        "Ablation A2 — memory renaming "
        "(registers-only vs full renaming vs memory-oracle)",
        ["id", "benchmark", "n"] + [m.name for m in MODELS] + ["gain"],
        rows)
    emit("ablation_memrename", text)
    for results, gain in checks:
        regs_only, full, oracle = (r.ilp for r in results)
        assert full >= regs_only
        assert oracle >= full * 0.999
    # memory renaming must matter substantially somewhere
    assert any(gain > 3 for _, gain in checks)
