"""Shared plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and writes
the rendered rows to ``benchmarks/results/<name>.txt`` (pytest captures
stdout, so the files are the canonical artifact).  Benchmarks that have
machine-readable payloads additionally write
``benchmarks/results/BENCH_<name>.json`` via :func:`emit_json` so plots
and CI checks don't have to re-parse the text tables.  Dataset sizes scale
with the ``REPRO_BENCH_SCALE`` environment variable: 0 (default) keeps the
whole suite to a couple of minutes; 1 or 2 stretch toward the paper's
sizes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: 0 = quick (CI), larger = closer to the paper's dataset sizes.
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "0"))

#: worker processes for engine-backed benchmarks (None = serial).
BENCH_JOBS = (int(os.environ["REPRO_BENCH_JOBS"])
              if os.environ.get("REPRO_BENCH_JOBS") else None)

#: result-cache directory for engine-backed benchmarks (None = no cache).
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None


def bench_cache():
    """The shared :class:`repro.runner.ResultCache`, or None.

    Timing benchmarks must NOT use this (a cache hit measures nothing);
    it exists for the deterministic sweeps whose payloads are
    bit-identical however they were produced.
    """
    if BENCH_CACHE_DIR is None:
        return None
    from repro.runner import ResultCache
    return ResultCache(BENCH_CACHE_DIR)


def run_sim_batch(jobs):
    """Fan simulation *jobs* through the batch engine with the env-tuned
    pool/cache; returns (payloads, report) and raises on any job failure."""
    from repro.runner import run_batch

    report = run_batch(jobs, pool_size=BENCH_JOBS, cache=bench_cache())
    if not report.ok:
        worst = report.failures[0]
        raise RuntimeError("benchmark job %s failed: %s"
                           % (worst.job_id, worst.error))
    return [outcome.payload for outcome in report.outcomes], report


def emit(name: str, text: str) -> Path:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / ("%s.txt" % name)
    path.write_text(text + "\n")
    print("\n" + text)
    print("[written to %s]" % path)
    return path


def emit_json(name: str, payload) -> Path:
    """Persist a machine-readable result next to the text table.

    The payload must be JSON-serializable; the file lands at
    ``benchmarks/results/BENCH_<name>.json`` with stable key order so
    diffs between runs stay readable.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / ("BENCH_%s.json" % name)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("[json written to %s]" % path)
    return path


def table(title: str, header, rows) -> str:
    """Render an aligned text table."""
    columns = [header] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(header))]
    lines = [title, ""]
    for j, row in enumerate(columns):
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * widths[i]
                                   for i in range(len(header))))
    return "\n".join(lines)
