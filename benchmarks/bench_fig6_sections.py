"""E2 — Figures 4-6: the forked sum(t,5): sections, call tree, trace.

Regenerates the Figure 5 run's section decomposition and checks the
paper's structure: 5 sections (plus our main-resume section), section 2
being the longest at 16 instructions, and the Figure 4 creation tree.
"""

from _common import emit, table

from repro.fork import render_section_trace, render_section_tree
from repro.machine import run_forked
from repro.paper import paper_array, sum_forked_program


def _run():
    prog = sum_forked_program(paper_array(5))
    result, machine = run_forked(prog, record_trace=True)
    return result, machine


def bench_figure6_sections(benchmark):
    result, machine = benchmark.pedantic(_run, rounds=1, iterations=1)
    lengths = {s.sid: s.length for s in machine.section_table()}
    rows = [
        ["sections (sum only / with main resume)", "5", "%d" % (len(lengths) - 1) + " / %d" % len(lengths)],
        ["longest section (paper: section 2)", 16, max(lengths.values())],
        ["section 3 length", 12, lengths[3]],
        ["sections 4 and 5 length", "3, 3", "%d, %d" % (lengths[4], lengths[5])],
        ["creation tree", "{1:[2,.],2:[3,5],3:[4]}",
         str(machine.section_tree())],
        ["result", 15, result.signed_output[0]],
    ]
    text = table("Figures 4-6 — sections of the forked sum(t,5) run",
                 ["quantity", "paper", "measured"], rows)
    text += "\n\nsection tree (Figure 4):\n" + render_section_tree(machine)
    text += "\n\nper-section trace (Figure 6):\n"
    text += render_section_trace(result.trace)
    emit("fig6_sections", text)
    assert lengths[2] == 16 and lengths[3] == 12
    assert machine.section_tree() == {1: [2, 6], 2: [3, 5], 3: [4]}
